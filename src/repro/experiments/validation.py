"""Calibration self-check: derived quantities vs. their paper targets.

``python -m repro.experiments.validation`` runs a handful of short probe
simulations and prints each calibrated quantity next to the paper
measurement it was derived from, with a pass/fail band.  This is the
release-time sanity report: if a model change silently shifts a derived
quantity out of band, this catches it before the figure benchmarks do.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import run_once
from repro.storage.blockmath import GIB, MIB
from repro.telemetry.report import format_table

__all__ = ["CHECKS", "CheckResult", "run_validation"]


@dataclass(frozen=True)
class CheckResult:
    """One validated quantity."""

    name: str
    paper: float
    measured: float
    lo: float
    hi: float
    unit: str

    @property
    def ok(self) -> bool:
        """Whether the measurement sits inside its acceptance band."""
        return self.lo <= self.measured <= self.hi


def run_validation(scale: float = 1 / 512, seed: int = 11) -> list[CheckResult]:
    """Run the probe simulations and evaluate every check."""
    quiet = DEFAULT_CALIBRATION
    busy = DEFAULT_CALIBRATION.busy()

    lustre100 = run_once("vanilla-lustre", "lenet", IMAGENET_100G,
                         calib=quiet, scale=scale, seed=seed)
    local100 = run_once("vanilla-local", "lenet", IMAGENET_100G,
                        calib=quiet, scale=scale, seed=seed)
    monarch100 = run_once("monarch", "lenet", IMAGENET_100G,
                          calib=quiet, scale=scale, seed=seed)
    alex_local = run_once("vanilla-local", "alexnet", IMAGENET_100G,
                          calib=quiet, scale=scale, seed=seed)
    resnet = run_once("vanilla-local", "resnet50", IMAGENET_100G,
                      calib=quiet, scale=scale, seed=seed)
    lustre200 = run_once("vanilla-lustre", "lenet", IMAGENET_200G,
                         calib=busy, scale=scale, seed=seed)
    monarch200 = run_once("monarch", "lenet", IMAGENET_200G,
                          calib=busy, scale=scale, seed=seed)

    def epoch_mean(rec):
        return rec.total_time_s / len(rec.epoch_times_s)

    checks = [
        CheckResult(
            "lustre eff. bandwidth (quiet)",
            paper=255.0,
            measured=100 * GIB / epoch_mean(lustre100) / MIB,
            lo=220, hi=300, unit="MiB/s",
        ),
        CheckResult(
            "lustre eff. bandwidth (busy)",
            paper=216.0,
            measured=200 * GIB / epoch_mean(lustre200) / MIB,
            lo=180, hi=260, unit="MiB/s",
        ),
        CheckResult(
            "LeNet vanilla-local epoch",
            paper=217.0, measured=epoch_mean(local100),
            lo=180, hi=240, unit="s",
        ),
        CheckResult(
            "AlexNet vanilla-local epoch",
            paper=325.0, measured=epoch_mean(alex_local),
            lo=290, hi=360, unit="s",
        ),
        CheckResult(
            "ResNet-50 epoch (any setup)",
            paper=450.0, measured=epoch_mean(resnet),
            lo=410, hi=500, unit="s",
        ),
        CheckResult(
            "ResNet-50 GPU utilization",
            paper=90.0, measured=100 * sum(resnet.gpu_utilization) / 3,
            lo=82, hi=96, unit="%",
        ),
        CheckResult(
            "MONARCH e1 / lustre e1 (100G)",
            paper=377 / 396,
            measured=monarch100.epoch_times_s[0] / lustre100.epoch_times_s[0],
            lo=0.80, hi=1.0, unit="ratio",
        ),
        CheckResult(
            "metadata init (100G)",
            paper=13.0, measured=monarch100.init_time_s,
            lo=9, hi=20, unit="s",
        ),
        CheckResult(
            "steady PFS ops (200G monarch)",
            paper=360_000.0, measured=float(monarch200.pfs_ops_per_epoch[-1]),
            lo=280_000, hi=440_000, unit="ops/epoch",
        ),
        CheckResult(
            "total lustre ops/epoch (200G)",
            paper=798_340.0, measured=float(lustre200.pfs_ops_per_epoch[0]),
            lo=700_000, hi=1_000_000, unit="ops/epoch",
        ),
        CheckResult(
            "memory estimate",
            paper=10.0, measured=monarch100.memory_gib,
            lo=9, hi=11.5, unit="GiB",
        ),
    ]
    return checks


#: names of every check, for quick discovery in tests
CHECKS = [
    "lustre eff. bandwidth (quiet)",
    "lustre eff. bandwidth (busy)",
    "LeNet vanilla-local epoch",
    "AlexNet vanilla-local epoch",
    "ResNet-50 epoch (any setup)",
    "ResNet-50 GPU utilization",
    "MONARCH e1 / lustre e1 (100G)",
    "metadata init (100G)",
    "steady PFS ops (200G monarch)",
    "total lustre ops/epoch (200G)",
    "memory estimate",
]


def main(argv: list[str] | None = None) -> int:
    """Print the validation report; exit 1 if any check is out of band."""
    checks = run_validation()
    rows = [
        (c.name, f"{c.paper:g}", f"{c.measured:.3g}",
         f"[{c.lo:g}, {c.hi:g}]", c.unit, "ok" if c.ok else "OUT OF BAND")
        for c in checks
    ]
    print(format_table(
        ["quantity", "paper", "measured", "band", "unit", "status"],
        rows,
        title="Calibration validation (derived quantities vs paper targets)",
    ))
    return 0 if all(c.ok for c in checks) else 1


if __name__ == "__main__":
    sys.exit(main())
