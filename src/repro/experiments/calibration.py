"""Every calibrated constant, with its derivation from the paper.

The simulation reproduces *ratios and orderings*, but its absolute
(simulated) seconds are anchored to the paper's measurements through the
constants below.  Each is derived from numbers the paper reports; the
derivations are spelled out so a reviewer can re-check them.

Derivation sketch (100 GiB dataset = 900 k images, 3 epochs, 4 GPUs,
batch 128 → 7 032 steps/epoch):

* **Local SSD read 520 MiB/s** — vanilla-local LeNet epoch ≈ 217 s for
  100 GiB ⇒ ≈ 472 MiB/s effective; 520 nominal minus latency/jitter
  overheads lands there.  LeNet is I/O-bound even on the SSD (GPU 39 %).
* **Local SSD write 400 MiB/s** — MONARCH's first epoch (≈ 375 s) is
  gated by the SSD absorbing the 100 GiB placement (256 s of writes)
  while serving a growing share of reads; at 300 MiB/s the first epoch
  would exceed vanilla-lustre's, contradicting Fig. 3.
* **Lustre client 560 MiB/s nominal, ×0.82 mean share (quiet), ×0.55
  random penalty** — vanilla-lustre LeNet epoch ≈ 402 s for 100 GiB ⇒
  ≈ 255 MiB/s effective on scattered 256 KiB reads.  Sequential streams
  (MONARCH's background fetches) skip the penalty: ≈ 460 MiB/s.
* **Busy-period share 0.70 for the 200 GiB runs** — the paper's own
  numbers imply lower Lustre throughput that week: LeNet-200 GiB epoch
  2842/3 ≈ 947 s ⇒ ≈ 216 MiB/s (vs 255).  We model it as heavier
  cross-job interference, which is the paper's own explanation for
  variability.
* **LeNet 380 µs/img GPU** — GPU util 39 % × 217 s × 4 GPUs / 900 k.
* **AlexNet 1040 µs/img GPU + 13 ms/step host** — GPU util 72 % at the
  325 s vanilla-local epoch; the host share is what keeps the wall step
  at 46 ms while the GPUs are busy 33 ms.
* **ResNet-50 1800 µs/img GPU + 6.4 ms/step host** — GPU pinned at
  ~90 % with a ≈ 450 s epoch in every setup (compute-bound).
* **CPU 4.3–4.4 ms/img preprocess, 20 map workers** — CPU utilizations
  30 % (lustre) / 57 % (local) for LeNet imply ≈ 4.3 ms per image over
  32 cores; 20 effective parallel calls reproduces the 200 GiB LeNet
  epoch being partially preprocessing-limited.
* **read chunk 256 KiB** — the paper's op counts imply it:
  200 GiB / 798 340 ops ≈ 262 KiB per op.
* **MDS latency 55 µs effective** — 52 s metadata init for 3 M images
  (one stat per ~70 KiB image... the namespace traversal is per *record
  shard* plus per-sample accounting folded into the stat cost; 13 s for
  the 100 GiB dataset's smaller namespace).

Everything scale-dependent (dataset bytes, tier capacities, stripe and
copy chunk sizes) is derived in :func:`Calibration.for_scale`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from dataclasses import replace as py_replace

from repro.data.dataset import DatasetSpec
from repro.framework.pipeline import PipelineConfig
from repro.framework.resources import NodeSpec
from repro.storage.blockmath import GIB, KIB, MIB
from repro.storage.device import DeviceProfile
from repro.storage.pfs import PFSConfig

__all__ = ["Calibration", "DEFAULT_CALIBRATION", "ScaledEnvironment"]


#: Local SSD: the node's 240 GB SATA drive (119 GiB usable partition).
SSD_PROFILE = DeviceProfile(
    name="sata-ssd",
    read_bw_mib=520.0,
    write_bw_mib=300.0,
    read_latency_us=50.0,
    write_latency_us=40.0,
    channels=1,
    jitter_sigma=0.03,
)

#: usable capacity of the local SSD partition (paper: 115 GiB configured)
LOCAL_CAPACITY_BYTES = 115 * GIB

#: Lustre interference regimes (see module docstring for the derivation).
QUIET_MEAN_LOAD = 0.18  # mean share 0.82 — the 100 GiB experiment weeks
BUSY_MEAN_LOAD = 0.21  # AR base load of the 200 GiB experiment weeks
# The busy regime additionally carries checkpoint-style *bursts* (two-state
# Markov), because the paper's 200 GiB numbers demand more than a lower
# mean: AlexNet's Lustre epochs (~1189 s) exceed both its compute floor
# (~1085 s) and LeNet's Lustre epochs (~947 s) on identical bytes — the
# signature of bursty I/O stalling a near-compute-bound pipeline whose
# bounded prefetch cannot bank quiet periods.
BUSY_BURST_SHARE = 0.35
BUSY_BURST_P = 0.008  # per-interval probability of entering a burst
BUSY_BURST_RECOVER = 0.032  # per-interval probability of leaving one


@dataclass(frozen=True)
class Calibration:
    """The full set of tunables for one experimental environment."""

    ssd: DeviceProfile = SSD_PROFILE
    local_capacity_bytes: int = LOCAL_CAPACITY_BYTES
    pfs: PFSConfig = field(default_factory=PFSConfig)
    pipeline: PipelineConfig = PipelineConfig(
        read_chunk=256 * KIB,
        cycle_length=16,
        num_map_workers=20,
        shuffle_buffer_records=4096,
        prefetch_batches=8,
        batch_size=128,
    )
    node: NodeSpec = NodeSpec(cpu_cores=32, n_gpus=4, memory_limit_bytes=68 * GIB)
    #: AR(1) interference mean load; pick per experiment regime
    interference_mean_load: float = QUIET_MEAN_LOAD
    interference_sigma: float = 0.012
    interference_rho: float = 0.99
    interference_max_load: float = 0.65
    #: burst component (0 disables; the busy regime enables it)
    burst_share: float = 0.0
    burst_p: float = 0.0
    burst_recover: float = 0.0
    #: MONARCH placement-handler pool size (paper §IV configuration)
    placement_threads: int = 6
    copy_chunk: int = 1 * MIB
    epochs: int = 3
    #: effective page-cache budget under the job's cgroup memory limit;
    #: small on purpose — it covers the copy-then-read window inside one
    #: epoch but gives little cross-epoch reuse (see storage/pagecache.py)
    page_cache_bytes: int = 8 * GIB
    page_cache_ram_bw_mib: float = 8192.0

    def busy(self) -> "Calibration":
        """The heavier-interference regime used for the 200 GiB runs."""
        return replace(
            self,
            interference_mean_load=BUSY_MEAN_LOAD,
            burst_share=BUSY_BURST_SHARE,
            burst_p=BUSY_BURST_P,
            burst_recover=BUSY_BURST_RECOVER,
        )


DEFAULT_CALIBRATION = Calibration()


@dataclass(frozen=True)
class ScaledEnvironment:
    """Scale-dependent quantities derived for one run."""

    scale: float
    local_capacity_bytes: int
    stripe_size: int
    copy_chunk: int
    interference_interval: float
    mds_latency_s: float
    page_cache_bytes: int
    pipeline: PipelineConfig

    @classmethod
    def derive(
        cls,
        calib: Calibration,
        full_dataset: DatasetSpec,
        dataset: DatasetSpec,
        scale: float,
    ) -> "ScaledEnvironment":
        """Derive the scaled environment for ``dataset`` at ``scale``.

        Capacities scale linearly with the dataset so the fits/doesn't-fit
        geometry is preserved.  The PFS stripe tracks the (scaled) shard
        size so striping keeps its full-scale proportions, and the MONARCH
        copy chunk covers a whole shard — the background fetch streams the
        full file in one striped read, as the prototype does.  The
        interference sampling interval scales with time (epochs shrink by
        ``scale``), keeping the count of congestion episodes per epoch
        realistic.

        **Metadata-count correction.**  Per-*file* costs (opens, the
        startup traversal) must un-scale with the file count, but small
        scales keep a minimum samples-per-shard, so the shard count does
        not shrink linearly.  Scaling the MDS latency by
        ``N_full * scale / N_scaled`` makes every per-file metadata cost
        land exactly where dividing by ``scale`` expects it.
        """
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        local_cap = max(1, int(round(calib.local_capacity_bytes * scale)))
        # Real Lustre geometry: 1 MiB stripes, i.e. ~4 read chunks per
        # stripe.  Keep that ratio rather than scaling stripes with shards.
        stripe = max(128 * KIB, min(1 * MIB, dataset.shard_target_bytes // calib.pfs.n_osts))
        copy_chunk = dataset.shard_target_bytes
        # Keep the congestion correlation time well under a scaled epoch so
        # interference averages out *within* an epoch (as it does at full
        # scale) while still varying across runs.
        interval = max(0.002, 1.0 * scale)
        mean_frame = full_dataset.size_model.mean_bytes + 16
        n_full = max(1, -(-full_dataset.n_samples * mean_frame // full_dataset.shard_target_bytes))
        mean_frame_s = dataset.size_model.mean_bytes + 16
        n_scaled = max(1, -(-dataset.n_samples * mean_frame_s // dataset.shard_target_bytes))
        correction = min(1.0, n_full * scale / n_scaled)
        # The page cache must cover the copy-then-read in-flight window
        # even when the shard-size floor makes shards disproportionately
        # large at small scales.
        page_cache = max(
            int(round(calib.page_cache_bytes * scale)),
            3 * calib.pipeline.cycle_length * dataset.shard_target_bytes,
        )
        # Batch and buffer record *counts* scale with the dataset so the
        # pipeline's time-slack (how long its buffers can bridge an I/O
        # burst) keeps its full-scale proportion; per-step host cost
        # shrinks with the batch via PipelineConfig.host_scale.
        base = calib.pipeline
        batch = max(8, int(round(base.batch_size * scale)))
        shuffle = max(2 * batch, int(round(base.shuffle_buffer_records * scale)))
        pipeline = py_replace(
            base,
            batch_size=batch,
            shuffle_buffer_records=shuffle,
            reference_batch=base.batch_size,
        )
        return cls(
            scale=scale,
            local_capacity_bytes=local_cap,
            stripe_size=stripe,
            copy_chunk=copy_chunk,
            interference_interval=interval,
            mds_latency_s=calib.pfs.mds_latency_s * correction,
            page_cache_bytes=page_cache,
            pipeline=pipeline,
        )
