"""FIG-MULTI: N concurrent training jobs sharing one MONARCH hierarchy.

The paper evaluates one training job per node but motivates MONARCH by the
PFS being a *shared*, contended resource (§II).  This scenario makes the
sharing explicit on the middleware side: several jobs — each with its own
compute node, model profile, dataset directory and namespace — mount the
*same* two-tier hierarchy.  The shared placement handler arbitrates tier
quota (fair-share admission caps via
:class:`~repro.core.tenancy.FairShareArbiter`) and copy bandwidth
(round-robin per-job backlogs), so no job can starve another's epoch-1
warm-up.

The experiment compares the *concurrent* run against the same jobs run
*serially* (each on a fresh single-tenant hierarchy): because each job
brings its own GPUs and only the storage is shared, the concurrent
makespan must beat the serial sum, while the fairness bound limits how
much any single job's epochs may stretch versus running alone.

Faults are not injected in multi-job runs; the FIG-FAULT scenario covers
degradation behaviour in the single-tenant setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import MonarchConfig, TierSpec
from repro.core.middleware import Monarch
from repro.core.tenancy import JobContext
from repro.data.dataset import DatasetSpec
from repro.data.imagenet import scaled
from repro.data.sharding import build_shards
from repro.data.virtual import materialize
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION, ScaledEnvironment
from repro.experiments.formats import MultiRunRecord, RunRecord
from repro.experiments.scenarios import DATASET_DIR, PFS_MOUNT, SSD_MOUNT
from repro.framework.models import MODELS
from repro.framework.pipeline import shards_from_manifest
from repro.framework.resources import ComputeNode
from repro.framework.training import Trainer, TrainResult
from repro.simkernel.core import Simulator
from repro.simkernel.monitor import TagAccounting
from repro.simkernel.rng import RngRegistry
from repro.storage.device import Device
from repro.storage.interference import (
    ARInterference,
    BurstInterference,
    CompositeInterference,
)
from repro.storage.localfs import LocalFileSystem
from repro.storage.pagecache import PageCache
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable
from repro.telemetry.runreport import RunTelemetry, build_multi_run_report

__all__ = [
    "JobPlan",
    "MultiRunHandle",
    "build_multi_run",
    "run_jobs_serially",
    "run_multi_once",
    "serial_total",
]


@dataclass(frozen=True)
class JobPlan:
    """One job of a concurrent multi-job run."""

    job_id: str
    model: str
    dataset: DatasetSpec  #: *unscaled* spec; shrunk by the run's scale
    share: float = 1.0  #: fair-share weight for tier admission
    epochs: int | None = None  #: None = the calibration's default


@dataclass
class MultiRunHandle:
    """One fully wired concurrent multi-job run, ready to execute."""

    jobs: list[JobPlan]
    env: ScaledEnvironment
    sim: Simulator
    trainers: dict[str, Trainer]
    contexts: dict[str, JobContext]
    monarch: Monarch
    pfs: ParallelFileSystem
    local_fs: LocalFileSystem
    accounting: TagAccounting
    telemetry: RunTelemetry | None = None
    results: dict[str, TrainResult] = field(default_factory=dict)

    def execute(self) -> dict[str, TrainResult]:
        """Run every job to completion; returns per-job train results."""
        procs = {
            plan.job_id: self.sim.spawn(
                self.trainers[plan.job_id].run(), name=f"train-{plan.job_id}"
            )
            for plan in self.jobs
        }
        self.sim.run(self.sim.all_of(procs.values()))
        self.monarch.shutdown()
        self.results = {job_id: proc.value for job_id, proc in procs.items()}
        return self.results


def build_multi_run(
    jobs: list[JobPlan],
    calib: Calibration,
    scale: float = 1.0,
    seed: int = 0,
    telemetry: bool = False,
    monarch_overrides: dict | None = None,
) -> MultiRunHandle:
    """Wire one shared hierarchy serving ``jobs`` concurrently.

    Every job gets its own compute node (GPUs and CPUs are per-job — only
    the storage is shared), its own dataset directory under the PFS and
    its own namespace/reader; the hierarchy, the placement pool and the
    fair-share arbiter are shared.  The scaled environment (capacities,
    stripe, copy chunk) is derived from the first job's dataset, so jobs
    of one run should share a base dataset spec.  A single-element
    ``jobs`` list reduces to the single-tenant monarch setup with the
    whole quota as the one job's share.
    """
    if not jobs:
        raise ValueError("need at least one JobPlan")
    ids = [j.job_id for j in jobs]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate job ids in {ids}")
    for plan in jobs:
        if plan.model not in MODELS:
            raise ValueError(
                f"unknown model {plan.model!r}; expected one of {sorted(MODELS)}"
            )
    base = jobs[0].dataset
    env = ScaledEnvironment.derive(calib, base, scaled(base, scale), scale)
    sim = Simulator()
    rngs = RngRegistry(seed)
    tele = RunTelemetry(sim) if telemetry else None
    recorder = tele.recorder if tele is not None else None
    accounting = TagAccounting()

    interference: ARInterference | CompositeInterference = ARInterference(
        rngs.stream("interference"),
        mean_load=calib.interference_mean_load,
        sigma=calib.interference_sigma,
        rho=calib.interference_rho,
        interval=env.interference_interval,
        max_load=calib.interference_max_load,
    )
    if calib.burst_p > 0:
        interference = CompositeInterference(
            interference,
            BurstInterference(
                rngs.stream("interference-burst"),
                quiet_share=1.0,
                burst_share=calib.burst_share,
                p_burst=calib.burst_p,
                p_recover=calib.burst_recover,
                interval=env.interference_interval,
            ),
        )
    pfs = ParallelFileSystem(
        sim,
        config=replace(calib.pfs, stripe_size=env.stripe_size, mds_latency_s=env.mds_latency_s),
        interference=interference,
        rng=rngs.stream("pfs-jitter"),
        name="pfs",
    )
    device = Device(sim, calib.ssd, rng=rngs.stream("ssd-jitter"))
    local_fs = LocalFileSystem(
        sim,
        device,
        capacity_bytes=env.local_capacity_bytes,
        name="local",
        page_cache=PageCache(env.page_cache_bytes, ram_bw_mib=calib.page_cache_ram_bw_mib),
    )
    mounts = MountTable()
    mounts.mount(PFS_MOUNT, pfs)
    mounts.mount(SSD_MOUNT, local_fs)
    backends = {"pfs": pfs.stats, "local": local_fs.stats}

    overrides = monarch_overrides or {}
    config = MonarchConfig(
        tiers=(TierSpec(mount_point=SSD_MOUNT), TierSpec(mount_point=PFS_MOUNT)),
        dataset_dir=DATASET_DIR,
        placement_threads=overrides.get("placement_threads", calib.placement_threads),
        copy_chunk=overrides.get("copy_chunk", env.copy_chunk),
        full_fetch_on_partial_read=overrides.get("full_fetch_on_partial_read", True),
        eviction=overrides.get("eviction", "none"),
        policy=overrides.get("policy", "firstfit"),
    )
    monarch = Monarch(
        sim, config, mounts,
        rng=rngs.stream("monarch"),
        recorder=recorder,
        accounting=accounting,
    )
    if tele is not None:
        tele.attach_backends(backends)
        tele.monarch = monarch

    trainers: dict[str, Trainer] = {}
    contexts: dict[str, JobContext] = {}
    for plan in jobs:
        job_dir = f"{DATASET_DIR}/{plan.job_id}"
        manifest = build_shards(scaled(plan.dataset, scale))
        pfs_paths = materialize(manifest, pfs, job_dir)
        ctx = monarch.register_job(plan.job_id, job_dir, share=plan.share)
        contexts[plan.job_id] = ctx
        trainers[plan.job_id] = Trainer(
            sim=sim,
            node=ComputeNode(sim, calib.node),
            model=MODELS[plan.model],
            config=env.pipeline,
            shards=shards_from_manifest(manifest, [PFS_MOUNT + p for p in pfs_paths]),
            reader=ctx.reader(),
            shuffle_rng=rngs.stream(f"shuffle:{plan.job_id}"),
            backends=backends,
            epochs=plan.epochs if plan.epochs is not None else calib.epochs,
            init_hook=ctx.initialize,
            epoch_end_hook=tele.job_hook(plan.job_id) if tele is not None else None,
            recorder=recorder,
            job_id=plan.job_id,
            accounting=accounting,
        )
    return MultiRunHandle(
        jobs=list(jobs),
        env=env,
        sim=sim,
        trainers=trainers,
        contexts=contexts,
        monarch=monarch,
        pfs=pfs,
        local_fs=local_fs,
        accounting=accounting,
        telemetry=tele,
    )


def run_multi_once(
    jobs: list[JobPlan],
    calib: Calibration | None = None,
    scale: float = 1.0,
    seed: int = 0,
    report: bool = False,
    monarch_overrides: dict | None = None,
) -> MultiRunRecord:
    """One seeded concurrent run; all measurements un-scaled to paper units."""
    calib = calib or DEFAULT_CALIBRATION
    handle = build_multi_run(
        jobs, calib, scale=scale, seed=seed, telemetry=report,
        monarch_overrides=monarch_overrides,
    )
    results = handle.execute()
    inv = 1.0 / scale
    record = MultiRunRecord(
        scale=scale,
        seed=seed,
        jobs={
            plan.job_id: {
                "model": plan.model,
                "dataset": plan.dataset.name,
                "share": plan.share,
                "epoch_times_s": [e.wall_time_s * inv for e in results[plan.job_id].epochs],
                "init_time_s": results[plan.job_id].init_time_s * inv,
                "total_time_s": results[plan.job_id].total_time_s * inv,
            }
            for plan in jobs
        },
        # All jobs start at t=0, so "now" at completion is the makespan.
        aggregate_time_s=handle.sim.now * inv,
    )
    if report:
        assert handle.telemetry is not None
        record.report = build_multi_run_report(
            handle.telemetry,
            {
                plan.job_id: {
                    "model": plan.model,
                    "share": plan.share,
                    "result": results[plan.job_id],
                }
                for plan in jobs
            },
            setup="fig-multi",
            dataset=jobs[0].dataset.name,
            scale=scale,
            seed=seed,
            accounting=handle.accounting,
        ).to_dict()
    return record


def run_jobs_serially(
    jobs: list[JobPlan],
    calib: Calibration | None = None,
    scale: float = 1.0,
    seed: int = 0,
    n_workers: int = 1,
    cache=None,
    monarch_overrides: dict | None = None,
) -> dict[str, RunRecord]:
    """The baseline: the same jobs one at a time, each on a fresh hierarchy.

    Each job runs through the standard single-tenant monarch setup with
    the whole SSD to itself — the strongest serial baseline, since no
    capacity is held back for siblings.  The baseline runs are independent
    single-tenant simulations, so ``n_workers > 1`` fans them out over a
    process pool and ``cache`` reuses previously computed ones — results
    are keyed by job id either way, byte-identical to the in-process loop.
    """
    from repro.experiments.executor import RunSpec, execute_grid

    specs = [
        RunSpec(
            setup="monarch",
            model=plan.model,
            dataset=plan.dataset,
            calib=calib or DEFAULT_CALIBRATION,
            scale=scale,
            seed=seed,
            epochs=plan.epochs,
            monarch_overrides=monarch_overrides,
        )
        for plan in jobs
    ]
    records = execute_grid(specs, jobs=n_workers, cache=cache)
    return {plan.job_id: rec for plan, rec in zip(jobs, records)}


def serial_total(records: dict[str, RunRecord]) -> float:
    """Serial wall-clock: the sum of every job's init + epochs."""
    return sum(r.init_time_s + r.total_time_s for r in records.values())
