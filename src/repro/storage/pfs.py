"""Lustre-like parallel file system model.

Three properties of the real system drive the paper's results, and this
model reproduces each:

1. **Shared, contended bandwidth.** The client's aggregate PFS bandwidth is
   capped and further scaled by a stochastic
   :class:`~repro.storage.interference.InterferenceModel` — this produces
   both the lower throughput and the run-to-run variability of
   *vanilla-lustre*.
2. **Striped data path.** Files are striped over ``n_osts`` object storage
   targets in ``stripe_size`` chunks; each OST is a FIFO queue, so many
   concurrent small random reads interleave worse than a few sequential
   full-file streams.  This asymmetry is exactly what makes MONARCH's
   full-file background fetch profitable during epoch 1.
3. **Expensive metadata.** Every ``open``/``stat``/``listdir`` pays an MDS
   round trip, so traversing a 3-million-image namespace costs tens of
   seconds (the paper's 13 s / 52 s metadata-initialization phases).

The PFS is read-mostly in our experiments (it is MONARCH's read-only last
tier) but writes are implemented for completeness.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.simkernel.core import Simulator
from repro.simkernel.resources import Resource, parallel_using
from repro.storage.base import (
    FileHandle,
    FileMeta,
    FileNotFoundInFS,
    FileSystem,
    norm_path,
)
from repro.storage.blockmath import (
    MIB,
    JitterStream,
    jitter_factor,
    jitter_from_normal,
    mib_per_s,
    split_into_chunks,
)
from repro.storage.interference import (
    ARInterference,
    ConstantInterference,
    InterferenceModel,
)
from repro.storage.stats import BackendStats

__all__ = ["PFSConfig", "ParallelFileSystem"]


@dataclass
class PFSConfig:
    """Tunables for the Lustre stand-in (calibrated in experiments/calibration.py)."""

    #: number of object storage targets the client stripes over
    n_osts: int = 8
    #: stripe size in bytes (Lustre default is 1 MiB)
    stripe_size: int = 1 * MIB
    #: nominal per-client aggregate read bandwidth, MiB/s (before interference)
    client_read_bw_mib: float = 560.0
    #: nominal per-client aggregate write bandwidth, MiB/s
    client_write_bw_mib: float = 380.0
    #: per-request network + server latency, seconds
    rpc_latency_s: float = 450e-6
    #: MDS service time for one metadata op, seconds.  Calibrated against
    #: the paper's metadata-initialization phase: ~13 s to traverse the
    #: 784-shard 100 GiB dataset ⇒ ~16 ms effective per file under load.
    mds_latency_s: float = 13.6e-3
    #: concurrent RPCs the MDS serves for this client
    mds_channels: int = 4
    #: concurrent RPCs each OST serves for this client (per-OST bandwidth is
    #: client_bw / n_osts per channel, so keep this at 1 unless you mean to
    #: raise the aggregate)
    ost_channels: int = 1
    #: multiplicative lognormal jitter applied per request
    jitter_sigma: float = 0.06
    #: bandwidth discount for sub-stripe random reads (RPC amortization
    #: loss); combined with OST queue imbalance this lands the client at
    #: ~255 MiB/s effective on scattered 256 KiB reads (the paper's
    #: derived vanilla-lustre throughput)
    random_read_penalty: float = 0.75

    def __post_init__(self) -> None:
        if self.n_osts < 1:
            raise ValueError("n_osts must be >= 1")
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")
        if not 0 < self.random_read_penalty <= 1:
            raise ValueError("random_read_penalty must be in (0, 1]")


@dataclass
class _PFSEntry:
    meta: FileMeta
    stripe_offset: int = 0  # first OST index for round-robin layout
    extra: dict[str, Any] = field(default_factory=dict)


class ParallelFileSystem(FileSystem):
    """Shared PFS: MDS + striped OSTs + cross-job interference."""

    def __init__(
        self,
        sim: Simulator,
        config: PFSConfig | None = None,
        interference: InterferenceModel | None = None,
        rng: np.random.Generator | None = None,
        name: str = "pfs",
    ) -> None:
        self.sim = sim
        self.config = config or PFSConfig()
        self.interference = interference or ConstantInterference(1.0)
        self.rng = rng
        self.name = name
        self._entries: dict[str, _PFSEntry] = {}
        self._used = 0
        self._next_stripe = 0
        self.stats = BackendStats(name=name)
        # All draws on the shared self.rng stream go through this block
        # buffer (see JitterStream) — bit-identical to scalar draws.
        self._jitter = (
            JitterStream(rng, self.config.jitter_sigma)
            if rng is not None and self.config.jitter_sigma > 0
            else None
        )
        # Hot-path constants (pread_begin): per-OST bandwidth before the
        # interference share, computed exactly as base_time does.
        cfg = self.config
        self._ost_bw_bps = mib_per_s(cfg.client_read_bw_mib) / cfg.n_osts
        self._ost_bw_bps_w = mib_per_s(cfg.client_write_bw_mib) / cfg.n_osts
        self._mds = Resource(sim, capacity=self.config.mds_channels, name=f"{name}:mds")
        self._osts = [
            Resource(sim, capacity=self.config.ost_channels, name=f"{name}:ost{i}")
            for i in range(self.config.n_osts)
        ]

    # -- dataset population (untimed; jobs find the dataset in place) ----
    def add_file(self, path: str, size: int) -> FileMeta:
        """Materialize a pre-existing file (dataset staging is out of scope)."""
        p = norm_path(path)
        if p in self._entries:
            raise ValueError(f"{self.name}: {path} already exists")
        if size < 0:
            raise ValueError("negative size")
        meta = FileMeta(path=p, size=int(size))
        self._entries[p] = _PFSEntry(meta=meta, stripe_offset=self._next_stripe)
        self._next_stripe = (self._next_stripe + 1) % self.config.n_osts
        self._used += int(size)
        return meta

    # -- oracle view ------------------------------------------------------
    def exists(self, path: str) -> bool:
        return norm_path(path) in self._entries

    def file_size(self, path: str) -> int:
        entry = self._entries.get(norm_path(path))
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        return entry.meta.size

    def paths(self) -> list[str]:
        return sorted(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def capacity_bytes(self) -> None:
        return None  # effectively unbounded for a single job

    # -- internals ----------------------------------------------------------
    def _bandwidth_share(self) -> float:
        return self.interference.share_at(self.sim.now)

    def base_time(
        self, nbytes: int, write: bool, sequential: bool, at: float | None = None
    ) -> float:
        """Jitter-free service time for one piece on one OST at time ``at``.

        Each OST serves at ``client_bw / n_osts``, so the client reaches
        its aggregate bandwidth only by keeping all OSTs busy — which is
        exactly what striped sequential fetches do and scattered random
        chunk reads do imperfectly (on top of the explicit random
        penalty modelling lost readahead / RPC amortization).

        ``at`` defaults to the current instant; bulk planners pass future
        instants (valid only when ``interference.supports_lookahead``).
        """
        cfg = self.config
        bw = cfg.client_write_bw_mib if write else cfg.client_read_bw_mib
        share = self.interference.share_at(self.sim.now if at is None else at)
        bw_bps = mib_per_s(bw) / cfg.n_osts * share
        if not write and not sequential:
            bw_bps *= cfg.random_read_penalty
        return cfg.rpc_latency_s + nbytes / bw_bps

    def _data_time(
        self,
        nbytes: int,
        write: bool,
        sequential: bool,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Jittered service time for one piece, drawing from ``rng``."""
        if rng is None:
            js = self._jitter
            return self.base_time(nbytes, write, sequential) * (
                js.factor() if js is not None else 1.0
            )
        return self.base_time(nbytes, write, sequential) * jitter_factor(
            rng, self.config.jitter_sigma
        )

    def _ost_for(self, entry: _PFSEntry, offset: int) -> Resource:
        idx = (entry.stripe_offset + offset // self.config.stripe_size) % self.config.n_osts
        return self._osts[idx]

    # -- bulk-transfer planning hooks ------------------------------------
    @property
    def bulk_capable(self) -> bool:
        """Whether service times may be pre-computed for future instants."""
        return bool(self.interference.supports_lookahead)

    def ost_for(self, path: str, offset: int) -> Resource:
        """The OST channel serving ``path`` at ``offset`` (for planners)."""
        entry = self._entries.get(norm_path(path))
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        return self._ost_for(entry, offset)

    def _mds_time(self) -> float:
        js = self._jitter
        t = self.config.mds_latency_s * (js.factor() if js is not None else 1.0)
        # Interference also slows metadata service.
        return t / max(self._bandwidth_share(), 1e-3)

    def _mds_op(self) -> Generator[Any, Any, None]:
        yield self._mds.hold(self._mds_time())

    # -- timed operations -----------------------------------------------------
    def open(self, path: str, flags: str = "r") -> Generator[Any, Any, FileHandle]:
        p = norm_path(path)
        self.stats.record_open()
        yield from self._mds_op()
        entry = self._entries.get(p)
        if entry is None:
            if flags == "r":
                raise FileNotFoundInFS(f"{self.name}: {path}")
            entry = _PFSEntry(meta=FileMeta(path=p, size=0), stripe_offset=self._next_stripe)
            self._next_stripe = (self._next_stripe + 1) % self.config.n_osts
            self._entries[p] = entry
        elif flags == "w":
            self._used -= entry.meta.size
            entry.meta.size = 0
        return FileHandle(fs=self, meta=entry.meta, flags=flags)

    def pread(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        sequential: bool = False,
        rng: np.random.Generator | None = None,
    ) -> Generator[Any, Any, int]:
        """Read; ``sequential`` marks streaming access (full-file fetches).

        Streaming reads skip the random-read bandwidth penalty — the model
        hook behind MONARCH's observation that background full-file copies
        extract more from Lustre than the framework's scattered part reads.
        ``rng`` overrides the shared jitter stream (per-task substreams).
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length")
        entry = self._entries.get(handle.meta.path)
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {handle.meta.path}")
        take = max(0, min(nbytes, handle.meta.size - offset))
        self.stats.record_read(take)
        if take == 0:
            yield from self._mds_op()
            return 0
        # Split on stripe boundaries; pieces on distinct OSTs are serviced
        # concurrently, the slowest one gates return.
        pieces = split_into_chunks(offset, take, self.config.stripe_size)
        if len(pieces) == 1:
            off, ln = pieces[0]
            yield self._ost_for(entry, off).hold(
                self._data_time(ln, False, sequential, rng)
            )
            return take
        yield parallel_using(
            self.sim,
            [
                (self._ost_for(entry, off), self._data_time(ln, False, sequential, rng))
                for off, ln in pieces
            ],
        )
        return take

    def pread_begin(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        cb: Any,
        sequential: bool = False,
        rng: np.random.Generator | None = None,
    ) -> int:
        """Continuation-style :meth:`pread` for fused readers.

        Returns the transfer size synchronously and schedules ``cb(event)``
        at the completion instant.  Jitter draws, stats and OST queueing all
        happen in the caller's dispatch slot, exactly where the generator
        form would perform them — the only difference is that no generator
        is parked on the result.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length")
        entry = self._entries.get(handle.meta.path)
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {handle.meta.path}")
        take = max(0, min(nbytes, handle.meta.size - offset))
        # Through the method, not inlined increments: IOTrace instruments
        # backends by wrapping record_read, and the fused path must stay
        # visible to it.
        self.stats.record_read(take)
        if take == 0:
            self._mds.hold(self._mds_time()).add_callback(cb)
            return 0
        cfg = self.config
        stripe = cfg.stripe_size
        if offset // stripe == (offset + take - 1) // stripe:
            # Single-piece fast path with base_time + _data_time inlined
            # op-for-op (same float expression order, hence bit-identical);
            # this is the per-chunk cost of every fused reader.  The AR
            # interference lookup is inlined for its memo-hit case (the
            # current step's load is almost always already materialized).
            intf = self.interference
            if type(intf) is ARInterference:
                k = int(self.sim._now // intf.interval)
                loads = intf._loads
                share = 1.0 - loads[k] if k < len(loads) else intf.share_at(self.sim._now)
            else:
                share = intf.share_at(self.sim._now)
            bw_bps = self._ost_bw_bps * share
            if not sequential:
                bw_bps *= cfg.random_read_penalty
            t = cfg.rpc_latency_s + take / bw_bps
            if rng is None:
                js = self._jitter
                if js is not None:
                    i = js._i
                    if i >= len(js._fs):
                        js._refill()
                        i = 0
                    js._i = i + 1
                    t *= js._fs[i]
            else:
                t *= jitter_factor(rng, cfg.jitter_sigma)
            idx = (entry.stripe_offset + offset // stripe) % cfg.n_osts
            self._osts[idx].hold(t, cb)
            return take
        pieces = split_into_chunks(offset, take, stripe)
        parallel_using(
            self.sim,
            [
                (self._ost_for(entry, off), self._data_time(ln, False, sequential, rng))
                for off, ln in pieces
            ],
        ).add_callback(cb)
        return take

    def open_begin(self, path: str, cb: Any) -> FileHandle:
        """Continuation-style read-only :meth:`open` for fused readers.

        Returns the handle synchronously (the namespace is resolved
        eagerly; PFS entries are immutable during a run) and schedules
        ``cb(event)`` once the MDS round trip completes.
        """
        p = norm_path(path)
        entry = self._entries.get(p)
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        self.stats.record_open()
        self._mds.hold(self._mds_time()).add_callback(cb)
        return FileHandle(fs=self, meta=entry.meta, flags="r")

    def pread_bulk(
        self,
        handle: FileHandle,
        offset: int,
        sizes: list[int],
        sequential: bool = True,
        rng: np.random.Generator | None = None,
    ) -> Generator[Any, Any, int]:
        """Read a back-to-back train of chunks starting at ``offset``.

        Simulated completion time is identical to one ``pread`` per chunk.
        When every chunk lands on a single OST piece and the interference
        model supports lookahead, the whole train is planned analytically
        and occupies the (idle) OSTs with a single event, degrading to
        exact per-chunk execution the moment anything else arrives.
        Jitter draws come from ``rng`` in chunk order, so pass a private
        substream (or run jitter-free) — sharing a stream with concurrent
        readers reorders draws versus the chunked equivalent.
        """
        if offset < 0 or any(n < 0 for n in sizes):
            raise ValueError("negative offset or length")
        entry = self._entries.get(handle.meta.path)
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {handle.meta.path}")
        total = sum(sizes)
        if offset + total > handle.meta.size:
            raise ValueError(f"{self.name}: bulk read past EOF")
        self.stats.record_reads(len(sizes), total)
        if total == 0:
            yield from self._mds_op()
            return 0
        stripe = self.config.stripe_size
        chunks: list[tuple[int, int]] = []  # (file offset, nbytes)
        pos = offset
        single_piece = True
        for n in sizes:
            chunks.append((pos, n))
            if len(split_into_chunks(pos, n, stripe)) > 1:
                single_piece = False
            pos += n
        if single_piece and self.bulk_capable:
            from repro.simkernel.bulk import hold_series

            sigma = self.config.jitter_sigma
            jit = (self.rng is not None or rng is not None) and sigma > 0.0
            if not jit:
                zs: list[float] = []
            elif rng is None:
                # Shared stream: raw draws must come from the block buffer
                # so they stay in sequence with the factor draws.
                zs = [self._jitter.z() for _ in chunks]
            else:
                zs = [rng.normal(0.0, sigma) for _ in chunks]
            schedule: list[tuple[Resource, float]] = []
            acc = self.sim.now
            for i, (off, n) in enumerate(chunks):
                t = self.base_time(n, False, sequential, at=acc)
                if jit:
                    t *= jitter_from_normal(zs[i])
                schedule.append((self._ost_for(entry, off), t))
                acc += t

            def chunk_exec(j: int) -> Generator[Any, Any, None]:
                off_j, n_j = chunks[j]
                t_j = self.base_time(n_j, False, sequential)
                if jit:
                    t_j *= jitter_from_normal(zs[j])
                yield from self._ost_for(entry, off_j).using(t_j)

            yield from hold_series(self.sim, schedule, chunk_exec=chunk_exec, shiftable=False)
            return total
        for off, n in chunks:
            pieces = split_into_chunks(off, n, stripe)
            if len(pieces) == 1:
                poff, ln = pieces[0]
                yield self._ost_for(entry, poff).hold(
                    self._data_time(ln, False, sequential, rng)
                )
            else:
                yield parallel_using(
                    self.sim,
                    [
                        (self._ost_for(entry, poff), self._data_time(ln, False, sequential, rng))
                        for poff, ln in pieces
                    ],
                )
        return total

    def pwrite(self, handle: FileHandle, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length")
        if handle.flags == "r":
            raise PermissionError(f"{self.name}: handle opened read-only")
        entry = self._entries.get(handle.meta.path)
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {handle.meta.path}")
        self.stats.record_write(nbytes)
        if nbytes > 0:
            yield self._ost_for(entry, offset).hold(self._data_time(nbytes, True, True))
        else:
            yield from self._mds_op()
        new_end = offset + nbytes
        growth = max(0, new_end - handle.meta.size)
        handle.meta.size = max(handle.meta.size, new_end)
        self._used += growth
        return nbytes

    def stat(self, path: str) -> Generator[Any, Any, FileMeta]:
        p = norm_path(path)
        self.stats.record_stat()
        yield from self._mds_op()
        entry = self._entries.get(p)
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        return entry.meta

    def listdir(self, path: str) -> Generator[Any, Any, list[str]]:
        prefix = norm_path(path)
        if not prefix.endswith("/"):
            prefix += "/"
        self.stats.record_listdir()
        yield from self._mds_op()
        return sorted(p for p in self._entries if p.startswith(prefix))

    def unlink(self, path: str) -> None:
        p = norm_path(path)
        entry = self._entries.pop(p, None)
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        self._used -= entry.meta.size
