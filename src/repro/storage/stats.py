"""Per-backend I/O accounting.

The paper's second evaluation question is "can MONARCH reduce the I/O
pressure on the PFS backend?", answered in operation counts (e.g. ~360,000
of 798,340 ops/epoch still reach Lustre with the 200 GiB dataset, a 55 %
average reduction).  :class:`BackendStats` counts exactly those quantities,
split into data operations (reads/writes) and metadata operations (opens,
stats, listdirs), with epoch snapshots so per-epoch deltas can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BackendStats", "StatsSnapshot"]


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable copy of the counters at one instant."""

    read_ops: int = 0
    write_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    open_ops: int = 0
    stat_ops: int = 0
    listdir_ops: int = 0

    @property
    def data_ops(self) -> int:
        """Total data-path operations."""
        return self.read_ops + self.write_ops

    @property
    def metadata_ops(self) -> int:
        """Total metadata-path operations."""
        return self.open_ops + self.stat_ops + self.listdir_ops

    @property
    def total_ops(self) -> int:
        """All operations, data and metadata."""
        return self.data_ops + self.metadata_ops

    def delta(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """Counter difference ``self - earlier``."""
        return StatsSnapshot(
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            open_ops=self.open_ops - earlier.open_ops,
            stat_ops=self.stat_ops - earlier.stat_ops,
            listdir_ops=self.listdir_ops - earlier.listdir_ops,
        )


@dataclass
class BackendStats:
    """Mutable counters owned by one storage backend."""

    name: str = ""
    read_ops: int = 0
    write_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    open_ops: int = 0
    stat_ops: int = 0
    listdir_ops: int = 0
    epochs: list[StatsSnapshot] = field(default_factory=list)

    def record_read(self, nbytes: int) -> None:
        """Account one read operation of ``nbytes``."""
        self.read_ops += 1
        self.bytes_read += int(nbytes)

    def record_write(self, nbytes: int) -> None:
        """Account one write operation of ``nbytes``."""
        self.write_ops += 1
        self.bytes_written += int(nbytes)

    def record_reads(self, ops: int, nbytes: int) -> None:
        """Account ``ops`` reads totalling ``nbytes`` (bulk fast path)."""
        self.read_ops += ops
        self.bytes_read += int(nbytes)

    def record_writes(self, ops: int, nbytes: int) -> None:
        """Account ``ops`` writes totalling ``nbytes`` (bulk fast path)."""
        self.write_ops += ops
        self.bytes_written += int(nbytes)

    def record_open(self) -> None:
        """Account one open()."""
        self.open_ops += 1

    def record_stat(self) -> None:
        """Account one stat()."""
        self.stat_ops += 1

    def record_listdir(self, entries: int = 0) -> None:
        """Account one directory listing."""
        self.listdir_ops += 1

    def snapshot(self) -> StatsSnapshot:
        """Immutable copy of the current counters."""
        return StatsSnapshot(
            read_ops=self.read_ops,
            write_ops=self.write_ops,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            open_ops=self.open_ops,
            stat_ops=self.stat_ops,
            listdir_ops=self.listdir_ops,
        )

    def mark_epoch(self) -> StatsSnapshot:
        """Record an epoch boundary; returns the delta since the last one."""
        snap = self.snapshot()
        base = self.epochs[-1] if self.epochs else StatsSnapshot()
        self.epochs.append(snap)
        return snap.delta(base)

    def epoch_deltas(self) -> list[StatsSnapshot]:
        """Per-epoch counter deltas for all marked epochs."""
        out: list[StatsSnapshot] = []
        prev = StatsSnapshot()
        for snap in self.epochs:
            out.append(snap.delta(prev))
            prev = snap
        return out
