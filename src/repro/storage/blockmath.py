"""Transfer-time arithmetic shared by device and PFS models.

Service time for one I/O of ``nbytes`` is modelled as

    t = fixed_latency + nbytes / bandwidth

optionally scaled by an interference factor and a small multiplicative
jitter.  Helpers here keep the math in one place and handle unit
conversions (the public API speaks bytes and seconds; profiles are written
in MiB/s and microseconds for readability).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "JitterStream",
    "mib_per_s",
    "transfer_time",
    "jitter_factor",
    "jitter_from_normal",
    "split_into_chunks",
]

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def mib_per_s(mib: float) -> float:
    """Convert a bandwidth in MiB/s to bytes/s."""
    return mib * MIB


def transfer_time(nbytes: int, bandwidth_bps: float, latency_s: float) -> float:
    """Latency-plus-streaming service time for a single transfer."""
    if nbytes < 0:
        raise ValueError(f"negative transfer size: {nbytes}")
    if bandwidth_bps <= 0:
        raise ValueError(f"non-positive bandwidth: {bandwidth_bps}")
    if latency_s < 0:
        raise ValueError(f"negative latency: {latency_s}")
    return latency_s + nbytes / bandwidth_bps


def jitter_factor(rng: np.random.Generator | None, sigma: float) -> float:
    """Multiplicative lognormal jitter with unit median.

    ``sigma`` of 0 (or no RNG) disables jitter.  The factor is clipped to
    [0.25, 4.0] so a single unlucky draw cannot dominate an epoch.
    """
    if rng is None or sigma <= 0:
        return 1.0
    return jitter_from_normal(rng.normal(0.0, sigma))


class JitterStream:
    """Block-buffered jitter draws, bit-identical to the scalar path.

    Wraps one ``np.random.Generator`` + ``sigma`` pair and pre-draws
    normals in blocks (``Generator.normal(0, s, n)`` consumes the bit
    stream exactly as ``n`` successive scalar draws, and vectorized
    ``np.exp`` matches the scalar ufunc elementwise — both asserted in
    tests), so the per-request cost drops from a numpy scalar call to a
    list index.  Every consumer of the wrapped generator must draw
    through this stream, or the pre-buffering would reorder the stream
    against the scalar equivalent; that is why the owning backend keeps
    exactly one stream per generator and routes both its factor draws
    and its bulk raw-normal draws (:meth:`z`) here.
    """

    __slots__ = ("rng", "sigma", "_zs", "_fs", "_i", "_block")

    def __init__(self, rng: np.random.Generator, sigma: float, block: int = 512) -> None:
        self.rng = rng
        self.sigma = sigma
        self._zs: list[float] = []
        self._fs: list[float] = []
        self._i = 0
        self._block = block

    def _refill(self) -> None:
        zs = self.rng.normal(0.0, self.sigma, self._block)
        self._zs = zs.tolist()
        self._fs = np.clip(np.exp(zs), 0.25, 4.0).tolist()
        self._i = 0

    def factor(self) -> float:
        """Next jitter factor — equals ``jitter_factor(rng, sigma)``."""
        i = self._i
        if i >= len(self._fs):
            self._refill()
            i = 0
        self._i = i + 1
        return self._fs[i]

    def z(self) -> float:
        """Next raw sample — equals ``rng.normal(0.0, sigma)``."""
        i = self._i
        if i >= len(self._zs):
            self._refill()
            i = 0
        self._i = i + 1
        return self._zs[i]


def jitter_from_normal(x: float) -> float:
    """The jitter factor for a pre-drawn ``normal(0, sigma)`` sample.

    Split out of :func:`jitter_factor` so bulk-transfer planners can draw
    the raw normals up front (preserving RNG stream order) and turn them
    into factors later, bit-identically to the inline draw.
    """
    f = float(np.exp(x))
    return min(max(f, 0.25), 4.0)


def split_into_chunks(offset: int, nbytes: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``[offset, offset+nbytes)`` on ``chunk``-aligned boundaries.

    Returns ``(offset, length)`` pieces, each fully inside one chunk — used
    to map a PFS read onto its stripe objects.
    """
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    if nbytes <= 0:
        return []
    pieces: list[tuple[int, int]] = []
    pos = offset
    end = offset + nbytes
    while pos < end:
        boundary = (pos // chunk + 1) * chunk
        take = min(end, boundary) - pos
        pieces.append((pos, take))
        pos += take
    return pieces
