"""Common types and the file-system interface of the storage substrate.

Every backend (local XFS stand-in, Lustre stand-in) implements
:class:`FileSystem`.  Operations that consume simulated time are generator
methods meant to be driven with ``yield from`` inside a simulated process;
purely-bookkeeping operations are plain methods.

Files carry *sizes*, not contents — the simulation tracks when bytes move,
not what they are.  Reads return the number of bytes actually transferred
(zero past EOF), matching ``pread(2)`` semantics.
"""

from __future__ import annotations

import posixpath
from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

__all__ = [
    "FileHandle",
    "FileMeta",
    "FileNotFoundInFS",
    "FileSystem",
    "IOFaultError",
    "NoSpaceError",
    "StorageError",
    "TierFailedError",
    "norm_path",
]


class StorageError(RuntimeError):
    """Base class for storage-substrate errors."""


class FileNotFoundInFS(StorageError):
    """Path does not exist in the backend namespace."""


class FileExistsInFS(StorageError):
    """Path already exists and the operation required it not to."""


class NoSpaceError(StorageError):
    """Backend ran out of capacity (ENOSPC)."""


class IOFaultError(StorageError):
    """Transient I/O failure (EIO) injected by a fault plan.

    ``mount`` names the faulting backend's mount point (when known) so the
    middleware can attribute the fault to the right tier's health record.
    Raised *before* any simulated time is consumed: a faulted operation
    fails instantly, like a device returning EIO from its completion queue.
    """

    def __init__(self, message: str, mount: str | None = None) -> None:
        super().__init__(message)
        self.mount = mount


class TierFailedError(IOFaultError):
    """Hard tier failure: the backend is down (``tier_down``), not flaky."""


def norm_path(path: str) -> str:
    """Normalize a path to an absolute, ``/``-separated canonical form."""
    if not path:
        raise ValueError("empty path")
    p = posixpath.normpath(path)
    if not p.startswith("/"):
        p = "/" + p
    return p


@dataclass
class FileMeta:
    """Namespace entry: one file's metadata."""

    path: str
    size: int = 0

    @property
    def name(self) -> str:
        """Basename of the file."""
        return posixpath.basename(self.path)


@dataclass
class FileHandle:
    """An open file: backend + metadata reference.

    Handles are cheap descriptors; they do not pin anything and may outlive
    truncation (reads past the shrunken EOF simply return 0 bytes).
    """

    fs: "FileSystem"
    meta: FileMeta
    flags: str = "r"

    @property
    def path(self) -> str:
        """Path the handle was opened on."""
        return self.meta.path

    @property
    def size(self) -> int:
        """Current file size in bytes."""
        return self.meta.size


class FileSystem:
    """Interface implemented by every simulated storage backend.

    Timed operations (``open``, ``pread``, ``pwrite``, ``stat``,
    ``listdir``) are generators: drive them with ``yield from`` inside a
    simulated process.  Their return values follow POSIX conventions.
    """

    #: human-readable backend name, used in stats and reports
    name: str = "fs"

    # -- namespace bookkeeping (untimed) --------------------------------
    def exists(self, path: str) -> bool:
        """True if ``path`` names a file in this backend."""
        raise NotImplementedError

    def file_size(self, path: str) -> int:
        """Size of ``path`` without paying metadata latency (oracle view)."""
        raise NotImplementedError

    def paths(self) -> list[str]:
        """All file paths, sorted (oracle view, untimed)."""
        raise NotImplementedError

    @property
    def used_bytes(self) -> int:
        """Bytes currently stored."""
        raise NotImplementedError

    @property
    def capacity_bytes(self) -> int | None:
        """Total capacity, or ``None`` for effectively-unbounded backends."""
        raise NotImplementedError

    @property
    def free_bytes(self) -> int | None:
        """Remaining capacity, or ``None`` if unbounded."""
        cap = self.capacity_bytes
        return None if cap is None else cap - self.used_bytes

    # -- timed operations ------------------------------------------------
    def open(self, path: str, flags: str = "r") -> Generator[Any, Any, FileHandle]:
        """Open ``path``; ``flags`` is ``"r"``, ``"w"`` (create/truncate) or ``"a"``."""
        raise NotImplementedError

    def pread(
        self, handle: FileHandle, offset: int, nbytes: int
    ) -> Generator[Any, Any, int]:
        """Read up to ``nbytes`` at ``offset``; returns bytes transferred."""
        raise NotImplementedError

    def pwrite(
        self, handle: FileHandle, offset: int, nbytes: int
    ) -> Generator[Any, Any, int]:
        """Write ``nbytes`` at ``offset`` (extending the file as needed)."""
        raise NotImplementedError

    def stat(self, path: str) -> Generator[Any, Any, FileMeta]:
        """Metadata lookup for ``path``."""
        raise NotImplementedError

    def listdir(self, path: str) -> Generator[Any, Any, list[str]]:
        """List file paths under directory ``path`` (recursive), sorted."""
        raise NotImplementedError

    # -- untimed mutation (used by eviction ablations / cleanup) ---------
    def unlink(self, path: str) -> None:
        """Remove ``path``, reclaiming its bytes."""
        raise NotImplementedError
