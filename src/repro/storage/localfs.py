"""Local file system on a block device (the paper's XFS-on-SSD tier).

Capacity accounting is byte-exact: a write that would exceed the partition
size raises :class:`NoSpaceError` without transferring anything, which is
what MONARCH's placement handler probes against (level occupancy / quota).

Metadata operations on a local FS are cheap but not free; they pay a small
fixed CPU-side latency rather than a device round trip, matching the large
observed gap between local and PFS metadata costs.
"""

from __future__ import annotations

import posixpath
from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any

from repro.simkernel.core import Simulator
from repro.storage.base import (
    FileHandle,
    FileMeta,
    FileNotFoundInFS,
    FileSystem,
    NoSpaceError,
    norm_path,
)
from repro.storage.device import Device
from repro.storage.pagecache import PageCache
from repro.storage.stats import BackendStats

__all__ = ["LocalFileSystem"]

#: CPU-side cost of a local metadata operation (dentry-cache hit scale).
_LOCAL_META_LATENCY_S = 4e-6


@dataclass
class _Entry:
    meta: FileMeta
    created_at: float = 0.0
    last_access: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)


class LocalFileSystem(FileSystem):
    """A single-device local file system with strict capacity accounting."""

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        capacity_bytes: int,
        name: str = "local",
        page_cache: PageCache | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.sim = sim
        self.device = device
        self.name = name
        self._capacity = int(capacity_bytes)
        self._used = 0
        self._entries: dict[str, _Entry] = {}
        self.stats = BackendStats(name=name)
        self.page_cache = page_cache

    # -- dataset population (untimed; for setups that start with data local)
    def add_file(self, path: str, size: int) -> FileMeta:
        """Materialize a pre-existing file (e.g. a locally staged dataset)."""
        p = norm_path(path)
        if p in self._entries:
            raise ValueError(f"{self.name}: {path} already exists")
        if size < 0:
            raise ValueError("negative size")
        if size > self.free_bytes:
            raise NoSpaceError(
                f"{self.name}: cannot stage {size} bytes, only {self.free_bytes} free"
            )
        meta = FileMeta(path=p, size=int(size))
        self._entries[p] = _Entry(meta=meta, created_at=self.sim.now)
        self._used += int(size)
        return meta

    # -- oracle (untimed) view ------------------------------------------
    def exists(self, path: str) -> bool:
        return norm_path(path) in self._entries

    def file_size(self, path: str) -> int:
        entry = self._entries.get(norm_path(path))
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        return entry.meta.size

    def paths(self) -> list[str]:
        return sorted(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    # -- timed operations -------------------------------------------------
    def open(self, path: str, flags: str = "r") -> Generator[Any, Any, FileHandle]:
        p = norm_path(path)
        self.stats.record_open()
        yield self.sim.timeout(_LOCAL_META_LATENCY_S)
        entry = self._entries.get(p)
        if entry is None:
            if flags == "r":
                raise FileNotFoundInFS(f"{self.name}: {path}")
            entry = _Entry(meta=FileMeta(path=p, size=0), created_at=self.sim.now)
            self._entries[p] = entry
        elif flags == "w":
            # truncate: reclaim the old bytes
            self._used -= entry.meta.size
            entry.meta.size = 0
        entry.last_access = self.sim.now
        return FileHandle(fs=self, meta=entry.meta, flags=flags)

    def pread(self, handle: FileHandle, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length")
        size = handle.meta.size
        take = max(0, min(nbytes, size - offset))
        entry = self._entries.get(handle.meta.path)
        if entry is not None:
            entry.last_access = self.sim.now
        self.stats.record_read(take)
        if take <= 0:
            yield self.sim.timeout(_LOCAL_META_LATENCY_S)
            return take
        cache = self.page_cache
        if cache is not None and cache.lookup(handle.meta.path):
            yield self.sim.timeout(cache.hit_time(take))
            return take
        yield from self.device.read(take)
        if cache is not None:
            cache.insert(handle.meta.path, handle.meta.size)
        return take

    def pread_begin(self, handle: FileHandle, offset: int, nbytes: int, cb: Any) -> int:
        """Continuation-style :meth:`pread` for fused readers.

        Returns the transfer size synchronously and schedules ``cb(event)``
        at the completion instant; stats, page-cache lookups and jitter
        draws all happen in the caller's dispatch slot, exactly where the
        generator form would perform them.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length")
        size = handle.meta.size
        take = max(0, min(nbytes, size - offset))
        entry = self._entries.get(handle.meta.path)
        if entry is not None:
            entry.last_access = self.sim.now
        self.stats.record_read(take)
        if take <= 0:
            self.sim.timeout(_LOCAL_META_LATENCY_S).add_callback(cb)
            return take
        cache = self.page_cache
        if cache is not None and cache.lookup(handle.meta.path):
            self.sim.timeout(cache.hit_time(take)).add_callback(cb)
            return take
        dev = self.device
        ev = dev._channel.hold(dev.read_service_time(take))
        if cache is not None:
            # Insert at the completion instant, as the generator form does
            # (concurrent lookups during the transfer must still miss).
            def _insert(_ev: Any, cache: PageCache = cache, handle: FileHandle = handle) -> None:
                cache.insert(handle.meta.path, handle.meta.size)

            ev.add_callback(_insert)
        ev.add_callback(cb)
        return take

    def open_begin(self, path: str, cb: Any) -> FileHandle:
        """Continuation-style read-only :meth:`open` for fused readers."""
        p = norm_path(path)
        self.stats.record_open()
        entry = self._entries.get(p)
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        ev = self.sim.timeout(_LOCAL_META_LATENCY_S)

        def _touch(_ev: Any, entry: _Entry = entry, sim: Simulator = self.sim) -> None:
            entry.last_access = sim.now

        ev.add_callback(_touch)
        ev.add_callback(cb)
        return FileHandle(fs=self, meta=entry.meta, flags="r")

    def pwrite(self, handle: FileHandle, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length")
        if handle.flags == "r":
            raise PermissionError(f"{self.name}: handle opened read-only")
        new_end = offset + nbytes
        growth = max(0, new_end - handle.meta.size)
        if growth > self.free_bytes:
            raise NoSpaceError(
                f"{self.name}: need {growth} more bytes, only {self.free_bytes} free"
            )
        self.stats.record_write(nbytes)
        if nbytes > 0:
            yield from self.device.write(nbytes)
        else:
            yield self.sim.timeout(_LOCAL_META_LATENCY_S)
        # Account growth after the transfer, mirroring delayed allocation.
        handle.meta.size = max(handle.meta.size, new_end)
        self._used += growth
        if self.page_cache is not None:
            # Freshly written pages stay hot: immediate re-reads hit RAM.
            self.page_cache.insert(handle.meta.path, handle.meta.size)
        return nbytes

    # -- bulk fast path ---------------------------------------------------
    def apply_bulk_write(
        self, handle: FileHandle, nbytes: int, ops: int, offset: int = 0
    ) -> None:
        """Bookkeeping for an externally-timed sequential bulk write.

        The placement planner times its chunk train itself (interleaved
        with PFS reads on one composed schedule); this applies the side
        effects — growth, counters, page-cache residency — exactly once at
        completion.  Untimed.
        """
        if handle.flags == "r":
            raise PermissionError(f"{self.name}: handle opened read-only")
        new_end = offset + nbytes
        growth = max(0, new_end - handle.meta.size)
        if growth > self.free_bytes:
            raise NoSpaceError(
                f"{self.name}: need {growth} more bytes, only {self.free_bytes} free"
            )
        self.stats.record_writes(ops, nbytes)
        handle.meta.size = max(handle.meta.size, new_end)
        self._used += growth
        entry = self._entries.get(handle.meta.path)
        if entry is not None:
            entry.last_access = self.sim.now
        if self.page_cache is not None:
            self.page_cache.insert(handle.meta.path, handle.meta.size)

    def pwrite_bulk(
        self,
        handle: FileHandle,
        offset: int,
        sizes: list[int],
        rng: Any = None,
    ) -> Generator[Any, Any, int]:
        """Write a back-to-back train of chunks starting at ``offset``.

        Simulated completion time is identical to one ``pwrite`` per chunk:
        the device bulk engine occupies an idle channel with a single event
        and degrades to exact per-chunk execution under contention.
        Bookkeeping lands once at the end.  ``rng`` must be a private
        substream (or None for the device's shared stream — then only
        bit-identical while nothing else draws from it concurrently).
        """
        if offset < 0 or any(n < 0 for n in sizes):
            raise ValueError("negative offset or length")
        if handle.flags == "r":
            raise PermissionError(f"{self.name}: handle opened read-only")
        total = sum(sizes)
        growth = max(0, offset + total - handle.meta.size)
        if growth > self.free_bytes:
            raise NoSpaceError(
                f"{self.name}: need {growth} more bytes, only {self.free_bytes} free"
            )
        if total > 0:
            yield from self.device.write_bulk(list(sizes), rng)
        else:
            yield self.sim.timeout(_LOCAL_META_LATENCY_S)
        self.apply_bulk_write(handle, total, len(sizes), offset=offset)
        return total

    def pread_bulk(
        self,
        handle: FileHandle,
        offset: int,
        sizes: list[int],
        rng: Any = None,
    ) -> Generator[Any, Any, int]:
        """Read a back-to-back train of chunks starting at ``offset``.

        Must lie within EOF (the caller plans against the known size).
        Completion time matches one ``pread`` per chunk; cache residency
        and counters are applied once at the end.
        """
        if offset < 0 or any(n < 0 for n in sizes):
            raise ValueError("negative offset or length")
        total = sum(sizes)
        if offset + total > handle.meta.size:
            raise ValueError(f"{self.name}: bulk read past EOF")
        entry = self._entries.get(handle.meta.path)
        if entry is not None:
            entry.last_access = self.sim.now
        self.stats.record_reads(len(sizes), total)
        if total == 0:
            yield self.sim.timeout(_LOCAL_META_LATENCY_S)
            return 0
        cache = self.page_cache
        if cache is not None and cache.lookup(handle.meta.path):
            # Pure delays never contend, so one summed timeout completes
            # at the same instant as per-chunk hit timeouts.
            yield self.sim.timeout(sum(cache.hit_time(n) for n in sizes))
            return total
        yield from self.device.read_bulk(list(sizes), rng)
        if cache is not None:
            cache.insert(handle.meta.path, handle.meta.size)
        return total

    def stat(self, path: str) -> Generator[Any, Any, FileMeta]:
        p = norm_path(path)
        self.stats.record_stat()
        yield self.sim.timeout(_LOCAL_META_LATENCY_S)
        entry = self._entries.get(p)
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        return entry.meta

    def listdir(self, path: str) -> Generator[Any, Any, list[str]]:
        prefix = norm_path(path)
        if not prefix.endswith("/"):
            prefix += "/"
        self.stats.record_listdir()
        yield self.sim.timeout(_LOCAL_META_LATENCY_S)
        return sorted(p for p in self._entries if p.startswith(prefix))

    # -- untimed mutation -------------------------------------------------
    def unlink(self, path: str) -> None:
        p = norm_path(path)
        entry = self._entries.pop(p, None)
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        self._used -= entry.meta.size
        if self.page_cache is not None:
            self.page_cache.discard(p)

    def last_access_time(self, path: str) -> float:
        """Most recent read/open time (used by the LRU eviction ablation)."""
        entry = self._entries.get(norm_path(path))
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        return entry.last_access

    def created_time(self, path: str) -> float:
        """Creation time (used by the FIFO eviction ablation)."""
        entry = self._entries.get(norm_path(path))
        if entry is None:
            raise FileNotFoundInFS(f"{self.name}: {path}")
        return entry.created_at
