"""Mount table and the POSIX-ish API the rest of the system programs against.

The mini-DL-framework and MONARCH both speak to storage through a
:class:`MountTable`: paths are resolved by longest mount-point prefix to
the owning backend, then the operation is forwarded.  This mirrors the
layering in the paper, where MONARCH "resides at the POSIX layer" below
TensorFlow's file-system drivers.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.storage.base import FileHandle, FileMeta, FileSystem, StorageError, norm_path

__all__ = ["MountTable"]


class MountTable:
    """Longest-prefix path router over mounted backends."""

    def __init__(self) -> None:
        self._mounts: dict[str, FileSystem] = {}

    def mount(self, mount_point: str, fs: FileSystem) -> None:
        """Attach ``fs`` at ``mount_point`` (must not already be mounted)."""
        mp = norm_path(mount_point)
        if mp in self._mounts:
            raise StorageError(f"mount point {mp} already in use")
        self._mounts[mp] = fs

    def unmount(self, mount_point: str) -> None:
        """Detach the backend at ``mount_point``."""
        mp = norm_path(mount_point)
        if mp not in self._mounts:
            raise StorageError(f"nothing mounted at {mp}")
        del self._mounts[mp]

    def mounts(self) -> dict[str, FileSystem]:
        """Copy of the mount map (mount point → backend)."""
        return dict(self._mounts)

    def resolve(self, path: str) -> tuple[FileSystem, str]:
        """Return ``(backend, backend_relative_path)`` for ``path``.

        The backend-relative path keeps the leading slash so backends have
        self-contained namespaces (``/mnt/ssd/a/b`` on a mount at
        ``/mnt/ssd`` resolves to ``/a/b``).
        """
        p = norm_path(path)
        best: str | None = None
        for mp in self._mounts:
            if p == mp or p.startswith(mp.rstrip("/") + "/"):
                if best is None or len(mp) > len(best):
                    best = mp
        if best is None:
            raise StorageError(f"no mount covers path {p}")
        rel = p[len(best.rstrip("/")):] or "/"
        return self._mounts[best], rel

    # -- forwarded POSIX-ish surface --------------------------------------
    def open(self, path: str, flags: str = "r") -> Generator[Any, Any, FileHandle]:
        """Timed open through the owning backend."""
        fs, rel = self.resolve(path)
        handle = yield from fs.open(rel, flags)
        return handle

    def pread(self, handle: FileHandle, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """Timed positional read on an open handle."""
        n = yield from handle.fs.pread(handle, offset, nbytes)
        return n

    def pwrite(self, handle: FileHandle, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """Timed positional write on an open handle."""
        n = yield from handle.fs.pwrite(handle, offset, nbytes)
        return n

    def stat(self, path: str) -> Generator[Any, Any, FileMeta]:
        """Timed metadata lookup."""
        fs, rel = self.resolve(path)
        meta = yield from fs.stat(rel)
        return meta

    def listdir(self, path: str) -> Generator[Any, Any, list[str]]:
        """Timed recursive listing; results are re-prefixed to global paths."""
        fs, rel = self.resolve(path)
        entries = yield from fs.listdir(rel)
        mount_point = self._mount_point_of(fs)
        return [mount_point.rstrip("/") + e for e in entries]

    def exists(self, path: str) -> bool:
        """Untimed existence probe."""
        try:
            fs, rel = self.resolve(path)
        except StorageError:
            return False
        return fs.exists(rel)

    def file_size(self, path: str) -> int:
        """Untimed oracle size lookup."""
        fs, rel = self.resolve(path)
        return fs.file_size(rel)

    def unlink(self, path: str) -> None:
        """Untimed removal."""
        fs, rel = self.resolve(path)
        fs.unlink(rel)

    def _mount_point_of(self, fs: FileSystem) -> str:
        for mp, mounted in self._mounts.items():
            if mounted is fs:
                return mp
        raise StorageError(f"backend {fs.name!r} is not mounted")
