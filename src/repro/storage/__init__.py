"""Simulated HPC storage substrate.

Models the storage stack of a supercomputer compute node as seen by a DL
job:

* :mod:`~repro.storage.device` — block-device service-time models (SATA
  SSD, NVMe, HDD, RAM disk) with queue-depth contention.
* :mod:`~repro.storage.localfs` — a local file system (the paper's XFS on
  the node SSD) with capacity accounting.
* :mod:`~repro.storage.pfs` — a Lustre-like parallel file system: a
  metadata server (MDS) plus striped object storage targets (OSTs), with a
  stochastic cross-job :mod:`~repro.storage.interference` model producing
  the throughput variability the paper observes on Frontera.
* :mod:`~repro.storage.vfs` — a mount table + POSIX-ish handle API
  (``open``/``pread``/``write``/``stat``/``listdir``) that both the
  mini-DL-framework and MONARCH program against.
* :mod:`~repro.storage.stats` — per-backend data/metadata operation and
  byte counters (the raw material for the paper's I/O-pressure numbers).

Files carry sizes, not contents: the simulation models *when* bytes move,
and the byte-level record format is exercised separately in
:mod:`repro.data.records`.
"""

from repro.storage.base import (
    FileHandle,
    FileMeta,
    FileNotFoundInFS,
    FileSystem,
    NoSpaceError,
    StorageError,
)
from repro.storage.device import Device, DeviceProfile, HDD_7200, NVME_GEN3, RAMDISK, SATA_SSD
from repro.storage.interference import (
    ARInterference,
    BurstInterference,
    ConstantInterference,
    InterferenceModel,
)
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem, PFSConfig
from repro.storage.stats import BackendStats
from repro.storage.vfs import MountTable

__all__ = [
    "ARInterference",
    "BackendStats",
    "BurstInterference",
    "ConstantInterference",
    "Device",
    "DeviceProfile",
    "FileHandle",
    "FileMeta",
    "FileNotFoundInFS",
    "FileSystem",
    "HDD_7200",
    "InterferenceModel",
    "LocalFileSystem",
    "MountTable",
    "NVME_GEN3",
    "NoSpaceError",
    "ParallelFileSystem",
    "PFSConfig",
    "RAMDISK",
    "SATA_SSD",
    "StorageError",
]
