"""Cross-job interference models for the shared PFS.

The paper's motivation experiments show "high performance variability under
the vanilla-lustre setup, since Lustre is concurrently accessed by other
jobs executing in the Frontera supercomputer".  We model that as a
stochastic *available-bandwidth share* in ``(0, 1]`` that scales the PFS's
effective client bandwidth over time.

Models are sampled lazily on a fixed grid: ``share_at(t)`` advances an
internal recurrence to ``floor(t / interval)`` steps, so no simulation
events are spent on the background load and a run remains a pure function
of the RNG stream.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ARInterference",
    "BurstInterference",
    "CompositeInterference",
    "ConstantInterference",
    "InterferenceModel",
]


class InterferenceModel:
    """Interface: available bandwidth share at simulated time ``t``."""

    #: Whether ``share_at`` is a pure function of ``t`` (memoized grid), so
    #: the bulk fast path may query future instants without perturbing what
    #: later callers observe.  Models that mutate state destructively on
    #: advance must leave this False, which disables bulk PFS transfers.
    supports_lookahead = False

    def share_at(self, t: float) -> float:
        """Fraction of nominal PFS bandwidth available at time ``t``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Rewind the internal state (a new run reuses the model)."""
        raise NotImplementedError


class ConstantInterference(InterferenceModel):
    """Fixed bandwidth share — a perfectly quiet (or steadily loaded) PFS."""

    supports_lookahead = True

    def __init__(self, share: float = 1.0) -> None:
        if not 0.0 < share <= 1.0:
            raise ValueError(f"share must be in (0, 1], got {share}")
        self.share = share

    def share_at(self, t: float) -> float:
        return self.share

    def reset(self) -> None:  # stateless
        return


class ARInterference(InterferenceModel):
    """AR(1) background load: smooth, correlated congestion.

    Load ``x`` follows ``x' = rho * x + (1-rho) * mean + eps`` on a grid of
    ``interval`` seconds, clipped to ``[0, max_load]``; the available share
    is ``1 - x``.  With ``rho`` near 1 this produces the slowly-wandering
    minutes-long congestion episodes seen on production file systems, which
    is what makes per-run epoch times vary.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mean_load: float = 0.5,
        sigma: float = 0.08,
        rho: float = 0.97,
        interval: float = 1.0,
        max_load: float = 0.85,
    ) -> None:
        if not 0.0 <= mean_load < 1.0:
            raise ValueError(f"mean_load must be in [0, 1), got {mean_load}")
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not mean_load <= max_load < 1.0:
            raise ValueError(f"max_load must be in [mean_load, 1), got {max_load}")
        self.rng = rng
        self.mean_load = mean_load
        self.sigma = sigma
        self.rho = rho
        self.interval = interval
        self.max_load = max_load
        # Memoized per-step loads: _loads[k] is the load after k updates.
        # Keeping the history (instead of only the latest value) makes
        # share_at a pure function of t for any already-materialized step,
        # so bulk transfers may look ahead without changing what later
        # per-chunk callers see at the same instants.
        self._loads = [mean_load]

    supports_lookahead = True

    def share_at(self, t: float) -> float:
        target = int(t // self.interval)
        loads = self._loads
        while len(loads) <= target:
            eps = self.rng.normal(0.0, self.sigma)
            load = self.rho * loads[-1] + (1 - self.rho) * self.mean_load + eps
            loads.append(min(max(load, 0.0), self.max_load))
        return 1.0 - loads[target]

    def reset(self) -> None:
        self._loads = [self.mean_load]


class BurstInterference(InterferenceModel):
    """Two-state Markov (quiet / burst) background load.

    Models checkpoint-style bursts from co-located jobs: in the quiet state
    the share is ``quiet_share``; bursts drop it to ``burst_share``.  State
    dwell times are geometric on the sampling grid.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        quiet_share: float = 0.9,
        burst_share: float = 0.35,
        p_burst: float = 0.02,
        p_recover: float = 0.10,
        interval: float = 1.0,
    ) -> None:
        if not 0.0 < burst_share <= quiet_share <= 1.0:
            raise ValueError("require 0 < burst_share <= quiet_share <= 1")
        if not (0.0 < p_burst < 1.0 and 0.0 < p_recover < 1.0):
            raise ValueError("transition probabilities must be in (0, 1)")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.rng = rng
        self.quiet_share = quiet_share
        self.burst_share = burst_share
        self.p_burst = p_burst
        self.p_recover = p_recover
        self.interval = interval
        # Memoized per-step states (see ARInterference._loads).
        self._states = [False]

    supports_lookahead = True

    def share_at(self, t: float) -> float:
        target = int(t // self.interval)
        states = self._states
        while len(states) <= target:
            u = self.rng.random()
            bursting = states[-1]
            if bursting:
                if u < self.p_recover:
                    bursting = False
            elif u < self.p_burst:
                bursting = True
            states.append(bursting)
        return self.burst_share if states[target] else self.quiet_share

    def reset(self) -> None:
        self._states = [False]


class CompositeInterference(InterferenceModel):
    """Product of independent interference sources.

    Used for the heavy-contention regime: a slowly wandering base load
    (AR) multiplied by checkpoint-style bursts.  Bursts matter beyond
    their effect on the *mean*: a training job whose compute rate sits
    just under the mean I/O rate stalls during every burst and — with a
    bounded prefetch buffer — cannot bank the quiet periods, so variance
    itself costs wall time (this is what makes AlexNet's 200 GiB Lustre
    epochs slower than LeNet's in the paper despite identical bytes).
    """

    def __init__(self, *models: InterferenceModel) -> None:
        if not models:
            raise ValueError("composite needs at least one model")
        self.models = models

    @property
    def supports_lookahead(self) -> bool:  # type: ignore[override]
        return all(m.supports_lookahead for m in self.models)

    def share_at(self, t: float) -> float:
        share = 1.0
        for m in self.models:
            share *= m.share_at(t)
        return share

    def reset(self) -> None:
        for m in self.models:
            m.reset()
