"""OS page-cache model for node-local file systems.

Why this exists: MONARCH's first epoch beats vanilla-lustre's (Fig. 3) even
though the SSD is simultaneously absorbing the whole dataset as background
copies.  That is only possible because the framework's reads of a
*just-copied* file are served by the kernel page cache (the copy wrote
those pages seconds earlier), not by the SSD.  We model exactly that
effect: an LRU cache of whole files with a byte budget; hits are served at
RAM speed without touching the device.

The budget is deliberately small (the job's cgroup memory limit leaves
little room, and cold pages are evicted long before the next epoch's
random pass returns), so cross-epoch reuse is marginal — matching the
paper's local-storage epochs running at SSD speed.

The shared PFS is *not* page-cached in this model: under the experiment's
memory limit the Lustre client cache is the first thing evicted, and the
paper's measured Lustre throughput shows no reuse benefit.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.blockmath import mib_per_s

__all__ = ["PageCache"]


class PageCache:
    """Whole-file LRU page cache with a byte budget."""

    def __init__(
        self,
        capacity_bytes: int,
        ram_bw_mib: float = 8192.0,
        hit_latency_s: float = 2e-6,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if ram_bw_mib <= 0:
            raise ValueError("RAM bandwidth must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.ram_bw_bps = mib_per_s(ram_bw_mib)
        self.hit_latency_s = hit_latency_s
        self._entries: OrderedDict[str, int] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    @property
    def used_bytes(self) -> int:
        """Bytes of cached file content."""
        return self._used

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def hit_time(self, nbytes: int) -> float:
        """Service time of a cache hit (memcpy from page cache)."""
        return self.hit_latency_s + nbytes / self.ram_bw_bps

    def lookup(self, name: str) -> bool:
        """Check + LRU-touch; counts hit/miss statistics."""
        if name in self._entries:
            self._entries.move_to_end(name)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, name: str, size: int) -> None:
        """Cache (or refresh) a whole file, evicting LRU entries to fit.

        Files larger than the whole budget are not cached at all.
        """
        if size < 0:
            raise ValueError("negative size")
        if size > self.capacity_bytes:
            self.discard(name)
            return
        old = self._entries.pop(name, None)
        if old is not None:
            self._used -= old
        while self._used + size > self.capacity_bytes and self._entries:
            _victim, vsize = self._entries.popitem(last=False)
            self._used -= vsize
        self._entries[name] = size
        self._used += size

    def discard(self, name: str) -> None:
        """Drop a file from the cache (e.g. on unlink/truncate)."""
        old = self._entries.pop(name, None)
        if old is not None:
            self._used -= old

    def hit_ratio(self) -> float:
        """Fraction of lookups that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
