"""Block-device service-time models.

A :class:`Device` is a FIFO queue of ``channels`` independent
*full-bandwidth lanes* in front of a latency + bandwidth transfer model:
total device throughput is ``channels * bandwidth`` and a single stream
achieves ``bandwidth``.  Every profile here uses one lane, which is the
right model for a saturating SATA SSD (its aggregate equals its stream
bandwidth; extra concurrency only queues).  Reads and writes share the
lane queue, capturing the read/write contention that matters when
MONARCH's background copies land on the tier the framework is reading.

Profiles are intentionally coarse: the reproduction calibrates *ratios*
(local SSD vs contended Lustre), not vendor datasheets.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.simkernel.core import Simulator
from repro.simkernel.resources import Resource
from repro.storage.blockmath import JitterStream, jitter_factor, mib_per_s, transfer_time

__all__ = ["Device", "DeviceProfile", "SATA_SSD", "NVME_GEN3", "HDD_7200", "RAMDISK"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static performance description of a block device."""

    name: str
    read_bw_mib: float
    write_bw_mib: float
    read_latency_us: float
    write_latency_us: float
    channels: int = 4
    jitter_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.read_bw_mib <= 0 or self.write_bw_mib <= 0:
            raise ValueError(f"{self.name}: bandwidths must be positive")
        if self.channels < 1:
            raise ValueError(f"{self.name}: channels must be >= 1")


#: The paper's node-local 240 GB SATA SSD (119 GiB usable partition).
SATA_SSD = DeviceProfile(
    name="sata-ssd",
    read_bw_mib=520.0,
    write_bw_mib=300.0,
    read_latency_us=90.0,
    write_latency_us=60.0,
    channels=1,
    jitter_sigma=0.03,
)

#: An NVMe drive for the multi-tier ablation (ABL-TIERS).
NVME_GEN3 = DeviceProfile(
    name="nvme-gen3",
    read_bw_mib=3200.0,
    write_bw_mib=1400.0,
    read_latency_us=20.0,
    write_latency_us=18.0,
    channels=1,
    jitter_sigma=0.02,
)

#: A spinning disk, for completeness in device tests.
HDD_7200 = DeviceProfile(
    name="hdd-7200",
    read_bw_mib=180.0,
    write_bw_mib=160.0,
    read_latency_us=4200.0,
    write_latency_us=4500.0,
    channels=1,
    jitter_sigma=0.05,
)

#: RAM-backed tier for the §VI future-work hierarchy experiment.
RAMDISK = DeviceProfile(
    name="ramdisk",
    read_bw_mib=9000.0,
    write_bw_mib=8000.0,
    read_latency_us=2.0,
    write_latency_us=2.0,
    channels=1,
    jitter_sigma=0.0,
)


class Device:
    """A simulated block device with queue-depth contention."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.rng = rng
        # Block-buffered draws for the device-owned stream (bit-identical
        # to scalar jitter_factor calls; see JitterStream).
        self._jitter = (
            JitterStream(rng, profile.jitter_sigma)
            if rng is not None and profile.jitter_sigma > 0
            else None
        )
        self._channel = Resource(sim, capacity=profile.channels, name=f"dev:{profile.name}")
        self.busy_monitor = self._channel.monitor

    def read_time(self, nbytes: int) -> float:
        """Uncontended service time for a read of ``nbytes``."""
        return transfer_time(
            nbytes,
            mib_per_s(self.profile.read_bw_mib),
            self.profile.read_latency_us * 1e-6,
        )

    def write_time(self, nbytes: int) -> float:
        """Uncontended service time for a write of ``nbytes``."""
        return transfer_time(
            nbytes,
            mib_per_s(self.profile.write_bw_mib),
            self.profile.write_latency_us * 1e-6,
        )

    def read(
        self, nbytes: int, rng: np.random.Generator | None = None
    ) -> Generator[Any, Any, int]:
        """Timed read: queue for a channel, hold it for the service time.

        ``rng`` overrides the device's jitter stream — bulk-capable callers
        pass a private per-task substream so that pre-drawing a whole
        chunk train's jitters does not perturb other consumers.
        """
        t = self.read_service_time(nbytes, rng)
        yield self._channel.hold(t)
        return nbytes

    def write(
        self, nbytes: int, rng: np.random.Generator | None = None
    ) -> Generator[Any, Any, int]:
        """Timed write: queue for a channel, hold it for the service time."""
        t = self.write_service_time(nbytes, rng)
        yield self._channel.hold(t)
        return nbytes

    def read_service_time(
        self, nbytes: int, rng: np.random.Generator | None = None
    ) -> float:
        """Jittered service time for one read, drawing from ``rng``."""
        if rng is None:
            js = self._jitter
            return self.read_time(nbytes) * (js.factor() if js is not None else 1.0)
        return self.read_time(nbytes) * jitter_factor(rng, self.profile.jitter_sigma)

    def write_service_time(
        self, nbytes: int, rng: np.random.Generator | None = None
    ) -> float:
        """Jittered service time for one write, drawing from ``rng``."""
        if rng is None:
            js = self._jitter
            return self.write_time(nbytes) * (js.factor() if js is not None else 1.0)
        return self.write_time(nbytes) * jitter_factor(rng, self.profile.jitter_sigma)

    def read_bulk(
        self, sizes: list[int], rng: np.random.Generator | None = None
    ) -> Generator[Any, Any, int]:
        """Read a train of chunks back to back, bulking idle stretches.

        Bit-identical in simulated time to ``for n in sizes: yield from
        self.read(n, rng)`` — under contention the bulk hold is preempted
        into exactly that per-chunk execution (see
        :mod:`repro.simkernel.bulk`).  The jitter draws happen up front, so
        ``rng`` must not be shared with concurrent consumers; pass a
        per-task substream (or run jitter-free).
        """
        from repro.simkernel.bulk import hold_series

        ch = self._channel
        schedule = [(ch, self.read_service_time(n, rng)) for n in sizes]
        yield from hold_series(self.sim, schedule)
        return sum(sizes)

    def write_bulk(
        self, sizes: list[int], rng: np.random.Generator | None = None
    ) -> Generator[Any, Any, int]:
        """Write a train of chunks back to back, bulking idle stretches."""
        from repro.simkernel.bulk import hold_series

        ch = self._channel
        schedule = [(ch, self.write_service_time(n, rng)) for n in sizes]
        yield from hold_series(self.sim, schedule)
        return sum(sizes)

    @property
    def channel(self) -> Resource:
        """The underlying channel resource (for composed bulk schedules)."""
        return self._channel

    @property
    def queue_len(self) -> int:
        """Requests waiting for a channel right now."""
        return self._channel.queue_len
