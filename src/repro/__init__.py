"""MONARCH reproduction: hierarchical storage management for DL frameworks.

A from-scratch Python reproduction of *MONARCH: Hierarchical Storage
Management for Deep Learning Frameworks* (Dantas et al., IEEE CLUSTER
2021), built on a deterministic discrete-event simulation of an HPC
compute node: a Lustre-like parallel file system with cross-job
interference, a node-local SSD, and a tf.data-like input pipeline feeding
synchronous multi-GPU training.

Public surface:

* :mod:`repro.core` — the MONARCH middleware (storage hierarchy, placement
  handler, metadata container, ``Monarch.read``).
* :mod:`repro.framework` — the mini-DL-framework substrate and the 6-LoC
  style integration point (``DataReader``).
* :mod:`repro.storage` — simulated storage backends.
* :mod:`repro.data` — record format and dataset presets.
* :mod:`repro.experiments` — the paper's evaluation, regenerated.
* :mod:`repro.simkernel` — the simulation engine everything runs on.

Quickstart::

    from repro.experiments import run_once
    from repro.data import IMAGENET_100G

    record = run_once("monarch", "lenet", IMAGENET_100G, scale=1 / 256)
    print(record.epoch_times_s)  # paper-equivalent seconds, 3 epochs
"""

from repro.core import Monarch, MonarchConfig, MonarchReader, TierSpec
from repro.experiments import run_experiment, run_once

__version__ = "1.0.0"

__all__ = [
    "Monarch",
    "MonarchConfig",
    "MonarchReader",
    "TierSpec",
    "run_experiment",
    "run_once",
    "__version__",
]
