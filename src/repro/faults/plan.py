"""Declarative fault schedules for the simulated storage hierarchy.

A :class:`FaultPlan` maps mount points to a schedule of fault events:

* :class:`TransientFaults` — over a time window, each read (write) op
  fails with probability ``read_p`` (``write_p``), raising
  :class:`~repro.storage.base.IOFaultError` (or
  :class:`~repro.storage.base.NoSpaceError` with ``error="nospace"``).
* :class:`LatencySpike` — over a time window, every operation on the
  backend takes ``multiplier`` times as long (a degraded link, a firmware
  garbage-collection stall, a noisy neighbour).
* :class:`TierDown` — hard failure at ``at``: every operation raises
  :class:`~repro.storage.base.TierFailedError` until ``recover_at``
  (forever when ``recover_at`` is None).

Plans are plain data — building one neither arms anything nor touches the
simulator.  :class:`~repro.faults.injector.FaultInjector` turns a plan
into wrapped backends.  The ``REPRO_FAULT_PLAN`` environment variable can
carry a JSON-encoded plan into any experiment entry point::

    REPRO_FAULT_PLAN='{"/mnt/ssd": [{"kind": "tier_down", "at": 30.0}]}'

See :meth:`FaultPlan.from_dict` for the JSON schema.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

__all__ = ["FaultPlan", "LatencySpike", "TierDown", "TransientFaults"]

#: error kinds a TransientFaults window may raise
_ERROR_KINDS = ("io", "nospace")


@dataclass(frozen=True)
class TransientFaults:
    """Probabilistic per-op failures over ``[start, end)``."""

    start: float
    end: float
    read_p: float = 0.0
    write_p: float = 0.0
    #: "io" raises IOFaultError, "nospace" raises NoSpaceError
    error: str = "io"

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"transient window ends ({self.end}) before it starts ({self.start})")
        for p in (self.read_p, self.write_p):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"fault probability {p} outside [0, 1]")
        if self.error not in _ERROR_KINDS:
            raise ValueError(f"unknown error kind {self.error!r}; expected one of {_ERROR_KINDS}")
        if self.error == "nospace" and self.read_p > 0.0:
            # ENOSPC is a write-path condition; a read can never run out
            # of space, so such a plan is a spec mistake, not a scenario.
            raise ValueError("nospace faults apply to writes only (read_p must be 0)")

    def active(self, now: float) -> bool:
        """Whether the window covers instant ``now``."""
        return self.start <= now < self.end


@dataclass(frozen=True)
class LatencySpike:
    """Every op over ``[start, end)`` takes ``multiplier`` times as long."""

    start: float
    end: float
    multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"latency window ends ({self.end}) before it starts ({self.start})")
        if self.multiplier < 1.0:
            raise ValueError(f"latency multiplier must be >= 1, got {self.multiplier}")

    def active(self, now: float) -> bool:
        """Whether the window covers instant ``now``."""
        return self.start <= now < self.end


@dataclass(frozen=True)
class TierDown:
    """Hard backend failure at ``at``; optional recovery at ``recover_at``."""

    at: float
    recover_at: float | None = None

    def __post_init__(self) -> None:
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError(
                f"recover_at ({self.recover_at}) must come after the failure ({self.at})"
            )

    def active(self, now: float) -> bool:
        """Whether the backend is down at instant ``now``."""
        if now < self.at:
            return False
        return self.recover_at is None or now < self.recover_at


#: any single schedulable fault event
FaultEvent = TransientFaults | LatencySpike | TierDown


class FaultPlan:
    """Immutable schedule of fault events, keyed by mount point."""

    def __init__(self, events: Mapping[str, Sequence[FaultEvent]]) -> None:
        plan: dict[str, tuple[FaultEvent, ...]] = {}
        for mount, evs in events.items():
            for ev in evs:
                if not isinstance(ev, (TransientFaults, LatencySpike, TierDown)):
                    raise TypeError(f"not a fault event: {ev!r}")
            plan[mount] = tuple(evs)
        self._events = plan

    # -- queries ----------------------------------------------------------
    def mounts(self) -> list[str]:
        """Mount points with scheduled events, sorted (deterministic)."""
        return sorted(self._events)

    def for_mount(self, mount: str) -> tuple[FaultEvent, ...]:
        """Events scheduled for ``mount`` (empty tuple if none)."""
        return self._events.get(mount, ())

    def is_empty(self) -> bool:
        """True when no mount has any event."""
        return not any(self._events.values())

    def __contains__(self, mount: str) -> bool:
        return bool(self._events.get(mount))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self._events!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._events == other._events

    # -- (de)serialization ------------------------------------------------
    def to_dict(self) -> dict[str, list[dict]]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        out: dict[str, list[dict]] = {}
        for mount, evs in self._events.items():
            rows = []
            for ev in evs:
                if isinstance(ev, TransientFaults):
                    rows.append(
                        {
                            "kind": "transient",
                            "start": ev.start,
                            "end": ev.end,
                            "read_p": ev.read_p,
                            "write_p": ev.write_p,
                            "error": ev.error,
                        }
                    )
                elif isinstance(ev, LatencySpike):
                    rows.append(
                        {
                            "kind": "latency",
                            "start": ev.start,
                            "end": ev.end,
                            "multiplier": ev.multiplier,
                        }
                    )
                else:
                    row: dict = {"kind": "tier_down", "at": ev.at}
                    if ev.recover_at is not None:
                        row["recover_at"] = ev.recover_at
                    rows.append(row)
            out[mount] = rows
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[Mapping]]) -> "FaultPlan":
        """Parse ``{mount: [{"kind": ..., ...}, ...]}``.

        Kinds: ``transient`` (``start``, ``end``, ``read_p``, ``write_p``,
        ``error``), ``latency`` (``start``, ``end``, ``multiplier``) and
        ``tier_down`` (``at``, optional ``recover_at``).
        """
        events: dict[str, list[FaultEvent]] = {}
        for mount, rows in data.items():
            parsed: list[FaultEvent] = []
            for row in rows:
                kind = row.get("kind")
                if kind == "transient":
                    parsed.append(
                        TransientFaults(
                            start=float(row["start"]),
                            end=float(row["end"]),
                            read_p=float(row.get("read_p", 0.0)),
                            write_p=float(row.get("write_p", 0.0)),
                            error=str(row.get("error", "io")),
                        )
                    )
                elif kind == "latency":
                    parsed.append(
                        LatencySpike(
                            start=float(row["start"]),
                            end=float(row["end"]),
                            multiplier=float(row["multiplier"]),
                        )
                    )
                elif kind == "tier_down":
                    rec = row.get("recover_at")
                    parsed.append(
                        TierDown(
                            at=float(row["at"]),
                            recover_at=None if rec is None else float(rec),
                        )
                    )
                else:
                    raise ValueError(f"unknown fault kind {kind!r} for mount {mount!r}")
            events[mount] = parsed
        return cls(events)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a JSON-encoded plan (the ``REPRO_FAULT_PLAN`` format)."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "FaultPlan | None":
        """Plan from ``REPRO_FAULT_PLAN``, or None when unset/empty."""
        raw = (env if env is not None else os.environ).get("REPRO_FAULT_PLAN", "").strip()
        if not raw:
            return None
        return cls.from_json(raw)
