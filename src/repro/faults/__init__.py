"""Seeded, deterministic fault injection for the simulated hierarchy.

Declare *what goes wrong and when* with a :class:`FaultPlan` (transient
I/O errors with probability p, latency spikes, hard ``tier_down``
events), then arm it with a :class:`FaultInjector`, which wraps the
planned mounts' file systems or devices in delegating proxies.  The
middleware's degradation machinery (per-tier health tracking, read
fallback, copy retry, quarantine/re-admission) lives in
:mod:`repro.core`; this package only produces the failures.

Everything is driven by a dedicated ``"faults"`` RNG stream, so a given
(seed, plan) pair replays the exact same fault sequence — including
bit-identical runs with ``REPRO_DISABLE_BULK_IO`` on or off.
"""

from repro.faults.injector import FaultInjector, FaultyDevice, FaultyFileSystem, TierFaultState
from repro.faults.plan import FaultPlan, LatencySpike, TierDown, TransientFaults
from repro.storage.base import IOFaultError, TierFailedError

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultyDevice",
    "FaultyFileSystem",
    "IOFaultError",
    "LatencySpike",
    "TierDown",
    "TierFaultState",
    "TierFailedError",
    "TransientFaults",
]
