"""Seeded, deterministic fault injection for simulated backends.

:class:`FaultInjector` arms a :class:`~repro.faults.plan.FaultPlan`
against a simulation: it wraps each planned mount's
:class:`~repro.storage.base.FileSystem` (or raw
:class:`~repro.storage.device.Device`) in a delegating proxy that
consults the plan before every timed operation.

Determinism contract:

* Each mount gets a private RNG substream, spawned from the injector's
  stream in sorted-mount order — wrapping more mounts never perturbs the
  draws of another mount.
* A probability draw happens *only* while a transient window covering the
  current instant has ``p > 0`` for the op's direction, so the draw
  sequence is a pure function of the (deterministic) op sequence.
* Faulted operations consume **zero** simulated time: the error surfaces
  before the backend is touched, like an EIO from a dead device.
* Latency spikes stretch an op by holding the extra time *after* the
  inner op completes, using the simulator's pooled timeout events.

The file-system proxy is deliberately *not* a ``LocalFileSystem`` /
``ParallelFileSystem`` subclass: the placement handler's analytic bulk
fast path requires those concrete types and falls back to exact per-chunk
execution otherwise, which guarantees every copy byte passes through the
proxy — and makes faulted runs trivially bit-identical with
``REPRO_DISABLE_BULK_IO`` on or off.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence
from typing import Any

import numpy as np

from repro.faults.plan import FaultEvent, FaultPlan, LatencySpike, TierDown, TransientFaults
from repro.storage.base import FileHandle, IOFaultError, NoSpaceError, TierFailedError

__all__ = ["FaultInjector", "FaultyDevice", "FaultyFileSystem", "TierFaultState"]


class TierFaultState:
    """Evaluates one mount's fault schedule against the simulation clock."""

    def __init__(
        self,
        sim: Any,
        mount: str,
        events: Sequence[FaultEvent],
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.mount = mount
        self.rng = rng
        self._transients = tuple(e for e in events if isinstance(e, TransientFaults))
        self._spikes = tuple(e for e in events if isinstance(e, LatencySpike))
        self._downs = tuple(e for e in events if isinstance(e, TierDown))
        # Injected-fault counters, by kind.
        self.transient_reads = 0
        self.transient_writes = 0
        self.down_rejections = 0

    def is_down(self, at: float | None = None) -> bool:
        """Whether a ``tier_down`` covers ``at`` (default: now)."""
        now = self.sim.now if at is None else at
        return any(d.active(now) for d in self._downs)

    def check(self, write: bool) -> None:
        """Raise the scheduled fault for one op starting now, if any.

        Zero simulated time passes: call before delegating to the backend.
        """
        now = self.sim.now
        if self.is_down(now):
            self.down_rejections += 1
            raise TierFailedError(f"{self.mount}: tier is down (fault plan)", mount=self.mount)
        for window in self._transients:
            p = window.write_p if write else window.read_p
            if p <= 0.0 or not window.active(now):
                continue
            if self.rng.random() < p:
                if write:
                    self.transient_writes += 1
                else:
                    self.transient_reads += 1
                kind = "write" if write else "read"
                if window.error == "nospace":
                    err: IOFaultError | NoSpaceError = NoSpaceError(
                        f"{self.mount}: injected ENOSPC on {kind}"
                    )
                    err.mount = self.mount  # type: ignore[attr-defined]
                    raise err
                raise IOFaultError(
                    f"{self.mount}: injected {kind} fault", mount=self.mount
                )

    def latency_multiplier(self, at: float | None = None) -> float:
        """Product of active latency-spike multipliers at ``at`` (>= 1)."""
        now = self.sim.now if at is None else at
        mult = 1.0
        for spike in self._spikes:
            if spike.active(now):
                mult *= spike.multiplier
        return mult

    @property
    def faults_injected(self) -> int:
        """Total faults this mount has raised."""
        return self.transient_reads + self.transient_writes + self.down_rejections


class FaultInjector:
    """Arms a fault plan: builds per-mount states and wraps backends."""

    def __init__(self, sim: Any, plan: FaultPlan, rng: np.random.Generator) -> None:
        self.sim = sim
        self.plan = plan
        mounts = plan.mounts()
        streams = rng.spawn(len(mounts)) if mounts else []
        self._states = {
            mount: TierFaultState(sim, mount, plan.for_mount(mount), stream)
            for mount, stream in zip(mounts, streams)
        }

    def state_for(self, mount: str) -> TierFaultState | None:
        """The mount's fault state, or None when it has no events."""
        return self._states.get(mount)

    def wrap_fs(self, mount: str, fs: Any) -> Any:
        """Wrap ``fs`` if the plan targets ``mount``; else return it as is."""
        state = self._states.get(mount)
        if state is None:
            return fs
        return FaultyFileSystem(fs, state)

    def wrap_device(self, mount: str, device: Any) -> Any:
        """Wrap a raw device if the plan targets ``mount``."""
        state = self._states.get(mount)
        if state is None:
            return device
        return FaultyDevice(device, state)

    def counters(self) -> dict[str, int]:
        """Flat ``{mount/kind: count}`` view of every injected fault."""
        out: dict[str, int] = {}
        for mount, state in sorted(self._states.items()):
            out[f"{mount}/transient_reads"] = state.transient_reads
            out[f"{mount}/transient_writes"] = state.transient_writes
            out[f"{mount}/down_rejections"] = state.down_rejections
        return out


class _FaultProxy:
    """Shared delegation + latency-stretch machinery of the two proxies."""

    def __init__(self, inner: Any, state: TierFaultState) -> None:
        self._inner = inner
        self._state = state
        self.sim = state.sim

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    @property
    def inner(self) -> Any:
        """The wrapped backend (escape hatch for tests/diagnostics)."""
        return self._inner

    @property
    def fault_state(self) -> TierFaultState:
        """This backend's schedule evaluator."""
        return self._state

    def _stretched(self, gen: Generator[Any, Any, Any]) -> Generator[Any, Any, Any]:
        """Run ``gen``, then hold the latency-spike surcharge.

        The multiplier is sampled at op start (the instant the plan
        schedules); the surcharge reuses the simulator's pooled timeout
        events so spiked runs allocate no extra Event objects.
        """
        mult = self._state.latency_multiplier()
        if mult <= 1.0:
            result = yield from gen
            return result
        t0 = self.sim.now
        result = yield from gen
        extra = (mult - 1.0) * (self.sim.now - t0)
        if extra > 0.0:
            ev = self.sim._pooled_timeout(extra)
            yield ev
            self.sim._recycle(ev)
        return result


class FaultyFileSystem(_FaultProxy):
    """FileSystem proxy that consults the fault schedule on every timed op.

    Untimed bookkeeping (``exists``, ``file_size``, ``unlink``,
    ``add_file``, ``apply_bulk_write``, stats, ...) passes straight
    through — cleanup after a failed copy must always succeed, exactly as
    dropping an in-memory descriptor table does on a dead device.
    """

    # -- timed metadata ops (count as reads) ------------------------------
    def open(self, path: str, flags: str = "r") -> Generator[Any, Any, FileHandle]:
        self._state.check(write=flags != "r")
        handle = yield from self._stretched(self._inner.open(path, flags))
        # Re-bind the handle to the proxy: callers route follow-up I/O via
        # ``handle.fs`` and must not tunnel past the injector.
        return FileHandle(fs=self, meta=handle.meta, flags=handle.flags)

    def stat(self, path: str) -> Generator[Any, Any, Any]:
        self._state.check(write=False)
        meta = yield from self._stretched(self._inner.stat(path))
        return meta

    def listdir(self, path: str) -> Generator[Any, Any, list[str]]:
        self._state.check(write=False)
        entries = yield from self._stretched(self._inner.listdir(path))
        return entries

    # -- timed data ops ----------------------------------------------------
    def pread(
        self, handle: FileHandle, offset: int, nbytes: int, *args: Any, **kwargs: Any
    ) -> Generator[Any, Any, int]:
        self._state.check(write=False)
        n = yield from self._stretched(self._inner.pread(handle, offset, nbytes, *args, **kwargs))
        return n

    def pwrite(self, handle: FileHandle, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        self._state.check(write=True)
        n = yield from self._stretched(self._inner.pwrite(handle, offset, nbytes))
        return n

    # -- bulk train ops ----------------------------------------------------
    def _bulk(
        self,
        write: bool,
        handle: FileHandle,
        offset: int,
        sizes: list[int],
        *args: Any,
        **kwargs: Any,
    ) -> Generator[Any, Any, int]:
        """Common bulk path: draw per chunk, run the surviving prefix.

        Draws are made in chunk order (matching what a chunk-at-a-time
        caller would consume from this mount's substream); the prefix
        before the first fault executes and its bookkeeping lands, then
        the fault surfaces — mirroring a chunk loop dying mid-train.
        """
        n_ok = len(sizes)
        fault: Exception | None = None
        for i in range(len(sizes)):
            try:
                self._state.check(write=write)
            except (IOFaultError, NoSpaceError) as err:
                n_ok, fault = i, err
                break
        total = 0
        if n_ok > 0:
            op = self._inner.pwrite_bulk if write else self._inner.pread_bulk
            total = yield from self._stretched(
                op(handle, offset, list(sizes[:n_ok]), *args, **kwargs)
            )
        if fault is not None:
            raise fault
        return total

    def pread_bulk(
        self, handle: FileHandle, offset: int, sizes: list[int], *args: Any, **kwargs: Any
    ) -> Generator[Any, Any, int]:
        n = yield from self._bulk(False, handle, offset, sizes, *args, **kwargs)
        return n

    def pwrite_bulk(
        self, handle: FileHandle, offset: int, sizes: list[int], *args: Any, **kwargs: Any
    ) -> Generator[Any, Any, int]:
        n = yield from self._bulk(True, handle, offset, sizes, *args, **kwargs)
        return n


class FaultyDevice(_FaultProxy):
    """Device proxy: same schedule semantics at the block layer."""

    def read(self, nbytes: int, *args: Any, **kwargs: Any) -> Generator[Any, Any, int]:
        self._state.check(write=False)
        n = yield from self._stretched(self._inner.read(nbytes, *args, **kwargs))
        return n

    def write(self, nbytes: int, *args: Any, **kwargs: Any) -> Generator[Any, Any, int]:
        self._state.check(write=True)
        n = yield from self._stretched(self._inner.write(nbytes, *args, **kwargs))
        return n

    def _bulk_sizes(self, write: bool, sizes: list[int]) -> tuple[int, Exception | None]:
        n_ok = len(sizes)
        fault: Exception | None = None
        for i in range(len(sizes)):
            try:
                self._state.check(write=write)
            except (IOFaultError, NoSpaceError) as err:
                n_ok, fault = i, err
                break
        return n_ok, fault

    def read_bulk(self, sizes: list[int], *args: Any, **kwargs: Any) -> Generator[Any, Any, int]:
        n_ok, fault = self._bulk_sizes(False, sizes)
        total = 0
        if n_ok > 0:
            total = yield from self._stretched(self._inner.read_bulk(list(sizes[:n_ok]), *args, **kwargs))
        if fault is not None:
            raise fault
        return total

    def write_bulk(self, sizes: list[int], *args: Any, **kwargs: Any) -> Generator[Any, Any, int]:
        n_ok, fault = self._bulk_sizes(True, sizes)
        total = 0
        if n_ok > 0:
            total = yield from self._stretched(self._inner.write_bulk(list(sizes[:n_ok]), *args, **kwargs))
        if fault is not None:
            raise fault
        return total
