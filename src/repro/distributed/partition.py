"""Shard-to-node data-placement policies (the §VI "new questions").

Synchronous data-parallel training splits each epoch's dataset across
nodes.  Two natural policies stress a per-node cache very differently:

* ``static`` — node *i* always owns the same shards.  A node's local tier
  converges to exactly its slice after epoch 1 — ideal for tiering, but
  every node sees the same subset every epoch (a sampling-bias trade-off
  real systems accept or mitigate with local shuffling).
* ``reshuffle`` — a fresh random partition every epoch, which is what
  unbiased global sampling wants.  Under MONARCH's no-eviction placement
  the tier fills with epoch-1's assignment and most of it is useless in
  later epochs — the pathological case the paper's future-work paragraph
  anticipates.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

__all__ = ["PartitionPolicy", "partition_shards"]

PartitionPolicy = Literal["static", "reshuffle"]


def partition_shards(
    n_shards: int,
    n_nodes: int,
    policy: PartitionPolicy,
    epoch: int,
    rng: np.random.Generator,
) -> list[list[int]]:
    """Assign shard indices to nodes for one epoch.

    Every shard goes to exactly one node; assignments are balanced to
    within one shard.  ``static`` ignores ``epoch`` and the RNG's state
    evolution (round-robin by index); ``reshuffle`` draws a fresh random
    permutation per call.
    """
    if n_shards < 1 or n_nodes < 1:
        raise ValueError("need at least one shard and one node")
    if n_nodes > n_shards:
        raise ValueError(f"{n_nodes} nodes for {n_shards} shards")
    if policy == "static":
        order = list(range(n_shards))
    elif policy == "reshuffle":
        order = [int(i) for i in rng.permutation(n_shards)]
    else:
        raise ValueError(f"unknown partition policy {policy!r}")
    out: list[list[int]] = [[] for _ in range(n_nodes)]
    for pos, shard in enumerate(order):
        out[pos % n_nodes].append(shard)
    return out
