"""Synchronous distributed data-parallel trainer.

Every epoch: partition the shards across nodes per the placement policy,
start one input pipeline per node, then run lockstep global steps — each
step waits for one batch from *every* node, runs all nodes' GPUs in
parallel, and pays one ring all-reduce.  An epoch ends when the first node
exhausts its partition (the synchronous world's drop-remainder); the other
pipelines are aborted, as a real framework's iterator teardown would.

Per-node MONARCH initialization (namespace traversal) happens once, in
parallel across nodes, before epoch 1.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.distributed.cluster import Cluster
from repro.distributed.network import GRAD_BYTES, AllReduceModel
from repro.distributed.partition import PartitionPolicy, partition_shards
from repro.framework.models import ModelProfile
from repro.framework.pipeline import EpochPipeline, PipelineConfig
from repro.storage.stats import StatsSnapshot

__all__ = ["DistributedResult", "DistributedTrainer", "EpochStats"]


@dataclass(frozen=True)
class EpochStats:
    """One distributed epoch's measurements."""

    index: int
    wall_time_s: float
    global_steps: int
    records: int
    pfs_ops: StatsSnapshot
    #: pooled cluster-wide fast-tier hit ratio — all nodes' fast-tier
    #: reads over all nodes' reads (monarch setups only).  Peer-cache
    #: hits count as fast-tier reads.
    tier_hit_ratio: float = 0.0
    #: per-node fast-tier hit ratio, indexed by node (0.0 for a node
    #: that served no reads this epoch)
    node_hit_ratios: tuple[float, ...] = ()
    #: unweighted mean of :attr:`node_hit_ratios` over nodes that
    #: actually served reads this epoch
    mean_node_hit_ratio: float = 0.0
    #: reads served off a peer node's SSD (monarch-p2p only)
    peer_hits: int = 0
    #: bytes fetched from peers over the fabric (monarch-p2p only)
    peer_bytes: int = 0


@dataclass
class DistributedResult:
    """Aggregate result of one distributed run."""

    n_nodes: int = 1
    policy: str = "static"
    epochs: list[EpochStats] = field(default_factory=list)
    init_time_s: float = 0.0
    #: why fused reader FSMs could not engage, per reason -> pipe count
    #: across all nodes and epochs; empty when fusion ran (or was off by
    #: design: env gate, cache-writing epoch)
    fusion_misses: dict[str, int] = field(default_factory=dict)

    @property
    def total_time_s(self) -> float:
        """Sum of epoch wall times."""
        return sum(e.wall_time_s for e in self.epochs)

    @property
    def epoch_times(self) -> list[float]:
        """Per-epoch wall times."""
        return [e.wall_time_s for e in self.epochs]


class DistributedTrainer:
    """Runs N epochs of synchronous data-parallel training on a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        model: ModelProfile,
        pipeline_config: PipelineConfig,
        partition_policy: PartitionPolicy = "static",
        allreduce: AllReduceModel | None = None,
        epochs: int = 3,
        seed: int = 0,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.cluster = cluster
        self.model = model
        self.config = pipeline_config
        self.policy: PartitionPolicy = partition_policy
        self.allreduce = allreduce or AllReduceModel()
        self.epochs = epochs
        grad_bytes = model.grad_bytes
        if grad_bytes is None:
            grad_bytes = GRAD_BYTES.get(model.name)
        if grad_bytes is None:
            raise ValueError(
                f"model {model.name!r} has no gradient payload: set "
                "ModelProfile.grad_bytes or add it to GRAD_BYTES"
            )
        self.grad_bytes = grad_bytes
        self._partition_rng = np.random.default_rng(seed * 7919 + 13)
        self._shuffle_rngs = [
            np.random.default_rng(seed * 104729 + 101 + i)
            for i in range(cluster.spec.n_nodes)
        ]
        self.result = DistributedResult(
            n_nodes=cluster.spec.n_nodes, policy=partition_policy
        )

    # -- lifecycle ----------------------------------------------------------
    def run(self) -> Generator[Any, Any, DistributedResult]:
        """The whole job; drive with ``sim.spawn(trainer.run())``."""
        sim = self.cluster.sim
        monarchs = [ns.monarch for ns in self.cluster.nodes if ns.monarch is not None]
        if monarchs:
            t0 = sim.now
            inits = [
                sim.spawn(m.initialize(), name=f"monarch-init-{i}")
                for i, m in enumerate(monarchs)
            ]
            yield sim.all_of(inits)
            self.result.init_time_s = sim.now - t0
        for epoch in range(self.epochs):
            yield from self._run_epoch(epoch)
        return self.result

    def _run_epoch(self, epoch: int) -> Generator[Any, Any, None]:
        sim = self.cluster.sim
        t0 = sim.now
        pfs_base = self.cluster.pfs.stats.snapshot()
        hit_base = self._hit_counts()
        peers = self.cluster.peers
        peer_base = (
            (peers.total_peer_hits, peers.total_peer_bytes)
            if peers is not None else (0, 0)
        )
        assignment = partition_shards(
            len(self.cluster.shards),
            self.cluster.spec.n_nodes,
            self.policy,
            epoch,
            self._partition_rng,
        )
        pipes: list[EpochPipeline] = []
        for ns, shard_ids in zip(self.cluster.nodes, assignment):
            pipe = EpochPipeline(
                sim=sim,
                config=self.config,
                shards=[self.cluster.shards[i] for i in shard_ids],
                reader=ns.reader,
                node=ns.node,
                model=self.model,
                shuffle_rng=self._shuffle_rngs[ns.index],
            )
            pipe.start()
            miss = pipe.fusion_miss
            if miss is not None:
                misses = self.result.fusion_misses
                misses[miss] = misses.get(miss, 0) + 1
            pipes.append(pipe)

        steps = 0
        records = 0
        sync_cost = self.allreduce.step_time(self.grad_bytes, self.cluster.spec.n_nodes)
        host = self.model.host_time() * self.config.host_scale
        try:
            while True:
                fetchers = [
                    sim.spawn(pipe.next_batch(), name=f"fetch-{i}")
                    for i, pipe in enumerate(pipes)
                ]
                batches = yield sim.all_of(fetchers)
                if any(b is None for b in batches):
                    break  # drop-remainder: first exhausted node ends the epoch
                gpu_steps = [
                    sim.spawn(
                        ns.node.gpu_group.using(
                            self.model.step_time(len(b), ns.node.spec.n_gpus)
                        ),
                        name=f"gpu-{ns.index}",
                    )
                    for ns, b in zip(self.cluster.nodes, batches)
                ]
                yield sim.all_of(gpu_steps)
                fabric = self.cluster.fabric
                if fabric is not None:
                    # Shared-link fabric: the sync holds every node's NIC,
                    # contending with in-flight peer-cache transfers.
                    if host > 0:
                        yield sim.timeout(host)
                    yield from fabric.allreduce(sync_cost)
                else:
                    overhead = host + sync_cost
                    if overhead > 0:
                        yield sim.timeout(overhead)
                steps += 1
                records += sum(len(b) for b in batches)
        finally:
            for pipe in pipes:
                pipe.abort()
        wall = sim.now - t0
        hit_now = self._hit_counts()
        node_ratios = self._node_hit_ratios(hit_base, hit_now)
        active = [
            r for (b, n), r in zip(zip(hit_base, hit_now), node_ratios)
            if n[1] - b[1] > 0
        ]
        peer_now = (
            (peers.total_peer_hits, peers.total_peer_bytes)
            if peers is not None else (0, 0)
        )
        self.result.epochs.append(EpochStats(
            index=epoch,
            wall_time_s=wall,
            global_steps=steps,
            records=records,
            pfs_ops=self.cluster.pfs.stats.snapshot().delta(pfs_base),
            tier_hit_ratio=self._hit_ratio_delta(hit_base, hit_now),
            node_hit_ratios=node_ratios,
            mean_node_hit_ratio=sum(active) / len(active) if active else 0.0,
            peer_hits=peer_now[0] - peer_base[0],
            peer_bytes=peer_now[1] - peer_base[1],
        ))

    # -- tier-hit accounting --------------------------------------------------
    def _hit_counts(self) -> list[tuple[int, int]]:
        """(fast-tier reads, total reads) per monarch node.

        Peer-cache hits — reads the node satisfied off a neighbour's SSD
        — count as fast-tier reads: they never touched the PFS.  They are
        invisible to the node's own ``MonarchStats`` (the peer path
        bypasses ``Monarch.read``), so the service's per-node counters
        are folded in here.
        """
        peers = self.cluster.peers
        out = []
        for ns in self.cluster.nodes:
            if ns.monarch is None:
                out.append((0, 0))
                continue
            stats = ns.monarch.stats
            pfs_level = ns.monarch.hierarchy.pfs_level
            total = stats.total_reads
            fast = total - stats.reads_per_level.get(pfs_level, 0)
            if peers is not None:
                p = peers.peer_hits_of(ns.index)
                fast += p
                total += p
            out.append((fast, total))
        return out

    def _hit_ratio_delta(
        self, base: list[tuple[int, int]], now: list[tuple[int, int]]
    ) -> float:
        """Pooled cluster-wide ratio: sum of hits over sum of reads."""
        hits = sum(n[0] - b[0] for b, n in zip(base, now))
        total = sum(n[1] - b[1] for b, n in zip(base, now))
        return hits / total if total else 0.0

    def _node_hit_ratios(
        self, base: list[tuple[int, int]], now: list[tuple[int, int]]
    ) -> tuple[float, ...]:
        """Per-node ratios (0.0 for nodes that served nothing)."""
        out = []
        for (b_hits, b_total), (n_hits, n_total) in zip(base, now):
            total = n_total - b_total
            out.append((n_hits - b_hits) / total if total else 0.0)
        return tuple(out)
