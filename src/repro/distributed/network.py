"""Network models for synchronous data-parallel training.

Two layers:

* :class:`AllReduceModel` — the closed-form ring-allreduce cost.  Each
  global step ends with a gradient all-reduce across nodes; the ring
  algorithm moves ``2 * (N-1) / N`` of the gradient bytes over each
  node's link, so step overhead is

      t = base_latency * 2 * (N - 1)  +  2 * (N - 1) / N * grad_bytes / link_bw

  which vanishes at N=1 and approaches ``2 * grad_bytes / link_bw`` for
  large N.  Defaults model a 100 Gb/s (12.5 GB/s effective)
  InfiniBand-class fabric, the norm on machines like Frontera.

* :class:`ClusterFabric` — the *shared-link* simulation of that fabric:
  one single-slot :class:`~repro.simkernel.resources.Resource` per node
  NIC.  A gradient sync holds **every** node's link for the allreduce
  duration; a peer-to-peer cache fetch holds the **source and
  destination** links for the transfer duration.  Because the same
  Resources back both, peer traffic contends with gradient
  synchronization exactly as it would on a real full-duplex-less link —
  a peer fetch in flight delays the next allreduce and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.simkernel.resources import Resource, parallel_using

__all__ = ["AllReduceModel", "ClusterFabric", "GRAD_BYTES"]

#: trainable-parameter gradient payloads (fp32) per model preset
GRAD_BYTES: dict[str, int] = {
    "lenet": 250_000,  # ~62k params
    "alexnet": 244_000_000,  # ~61M params
    "resnet50": 102_000_000,  # ~25.5M params
}


@dataclass(frozen=True)
class AllReduceModel:
    """Static description of the gradient-synchronization fabric."""

    link_bw_bytes_per_s: float = 12.5e9  #: per-node link bandwidth
    base_latency_s: float = 12e-6  #: per-hop launch latency

    def __post_init__(self) -> None:
        if self.link_bw_bytes_per_s <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.base_latency_s < 0:
            raise ValueError("latency must be >= 0")

    def step_time(self, grad_bytes: int, n_nodes: int) -> float:
        """Seconds one ring all-reduce of ``grad_bytes`` takes."""
        if grad_bytes < 0:
            raise ValueError("negative gradient size")
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if n_nodes == 1:
            return 0.0
        hops = 2 * (n_nodes - 1)
        volume = 2 * (n_nodes - 1) / n_nodes * grad_bytes
        return hops * self.base_latency_s + volume / self.link_bw_bytes_per_s

    def transfer_time(self, nbytes: int) -> float:
        """Seconds one point-to-point transfer of ``nbytes`` takes."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return self.base_latency_s + nbytes / self.link_bw_bytes_per_s


class ClusterFabric:
    """Per-node network links shared by gradient sync and peer fetches.

    Each node owns one single-slot link Resource; holds queue FIFO, so
    the interleaving of allreduce steps and peer-cache transfers is
    deterministic.  Counters are lifetime totals (telemetry).
    """

    def __init__(
        self,
        sim: Any,
        n_nodes: int,
        model: AllReduceModel | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.sim = sim
        self.model = model or AllReduceModel()
        self.links = [Resource(sim, 1, name=f"nic-{i}") for i in range(n_nodes)]
        self.peer_transfers = 0
        self.peer_bytes = 0
        self.allreduce_steps = 0

    @property
    def n_nodes(self) -> int:
        """Nodes on the fabric (one link each)."""
        return len(self.links)

    def transfer(self, src: int, dst: int, nbytes: int):
        """Move ``nbytes`` from node ``src`` to node ``dst`` (generator).

        Holds both endpoints' links concurrently for the transfer
        duration — the event fires when the slower (more contended) link
        frees up, so a transfer into a node mid-allreduce waits for the
        sync to finish.
        """
        if src == dst:
            raise ValueError(f"transfer to self (node {src})")
        self.peer_transfers += 1
        self.peer_bytes += nbytes
        t = self.model.transfer_time(nbytes)
        yield parallel_using(self.sim, [(self.links[src], t), (self.links[dst], t)])

    def transfer_begin(self, src: int, dst: int, nbytes: int, cb: Any) -> None:
        """Continuation form of :meth:`transfer`.

        Issues the same dual-link hold in the caller's dispatch slot —
        counters first, then the parallel acquire, exactly the order the
        generator form runs at its first ``send`` — and schedules
        ``cb(event)`` when both links release.
        """
        if src == dst:
            raise ValueError(f"transfer to self (node {src})")
        self.peer_transfers += 1
        self.peer_bytes += nbytes
        t = self.model.transfer_time(nbytes)
        ev = parallel_using(
            self.sim, [(self.links[src], t), (self.links[dst], t)]
        )
        ev.add_callback(cb)

    def allreduce(self, duration_s: float):
        """Hold every node's link for one gradient sync (generator).

        The caller supplies the duration (``AllReduceModel.step_time``
        keeps the cost model in one place); the fabric contributes the
        contention — queued peer transfers delay the sync start.
        """
        if duration_s < 0:
            raise ValueError("negative allreduce duration")
        self.allreduce_steps += 1
        if duration_s > 0:
            yield parallel_using(
                self.sim, [(link, duration_s) for link in self.links]
            )

    def counters(self) -> dict[str, int]:
        """Flat counter view for reports."""
        return {
            "fabric.peer_transfers": self.peer_transfers,
            "fabric.peer_bytes": self.peer_bytes,
            "fabric.allreduce_steps": self.allreduce_steps,
        }
