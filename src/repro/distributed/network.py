"""Ring-allreduce cost model for synchronous data-parallel training.

Each global step ends with a gradient all-reduce across nodes.  The ring
algorithm moves ``2 * (N-1) / N`` of the gradient bytes over each node's
link, so step overhead is

    t = base_latency * 2 * (N - 1)  +  2 * (N - 1) / N * grad_bytes / link_bw

which vanishes at N=1 and approaches ``2 * grad_bytes / link_bw`` for
large N.  Defaults model a 100 Gb/s (12.5 GB/s effective) InfiniBand-class
fabric, the norm on machines like Frontera.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AllReduceModel", "GRAD_BYTES"]

#: trainable-parameter gradient payloads (fp32) per model preset
GRAD_BYTES: dict[str, int] = {
    "lenet": 250_000,  # ~62k params
    "alexnet": 244_000_000,  # ~61M params
    "resnet50": 102_000_000,  # ~25.5M params
}


@dataclass(frozen=True)
class AllReduceModel:
    """Static description of the gradient-synchronization fabric."""

    link_bw_bytes_per_s: float = 12.5e9  #: per-node link bandwidth
    base_latency_s: float = 12e-6  #: per-hop launch latency

    def __post_init__(self) -> None:
        if self.link_bw_bytes_per_s <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.base_latency_s < 0:
            raise ValueError("latency must be >= 0")

    def step_time(self, grad_bytes: int, n_nodes: int) -> float:
        """Seconds one ring all-reduce of ``grad_bytes`` takes."""
        if grad_bytes < 0:
            raise ValueError("negative gradient size")
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if n_nodes == 1:
            return 0.0
        hops = 2 * (n_nodes - 1)
        volume = 2 * (n_nodes - 1) / n_nodes * grad_bytes
        return hops * self.base_latency_s + volume / self.link_bw_bytes_per_s
