"""Cluster construction: N node stacks sharing one PFS.

Each node gets its own :class:`~repro.framework.resources.ComputeNode`,
its own local SSD file system (with page cache), and — in the ``monarch``
setup — its own MONARCH instance with a private virtual namespace, exactly
as N independent single-node deployments would.  The PFS object is shared,
so the nodes contend for the same OST and MDS queues: adding nodes *is*
adding I/O pressure, which is what makes the scaling study interesting.

The ``monarch-p2p`` setup additionally joins the node-local SSDs into one
cluster-wide cache namespace (see :mod:`repro.distributed.peercache`):
local misses consult a cache directory and fetch off a peer's SSD over a
shared-link network fabric before falling back to the PFS.

Fault plans target per-node mounts: every node's local tier shares the
``SSD_MOUNT`` path string, so the plan keys them ``/mnt/ssd@<node>`` —
``SSD_MOUNT + "@1"`` kills node 1's SSD only.  The shared PFS is keyed by
its plain mount point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.config import MonarchConfig, TierSpec
from repro.core.middleware import Monarch, MonarchReader
from repro.data.dataset import DatasetSpec
from repro.data.imagenet import scaled
from repro.data.sharding import ShardManifest, build_shards
from repro.data.virtual import materialize
from repro.experiments.calibration import Calibration, ScaledEnvironment
from repro.experiments.scenarios import DATASET_DIR, PFS_MOUNT, SSD_MOUNT
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.framework.io_layer import DataReader, PosixReader
from repro.framework.pipeline import ShardInfo, shards_from_manifest
from repro.framework.resources import ComputeNode
from repro.simkernel.core import Simulator
from repro.simkernel.rng import RngRegistry
from repro.storage.device import Device
from repro.storage.interference import ARInterference
from repro.storage.localfs import LocalFileSystem
from repro.storage.pagecache import PageCache
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable
from repro.telemetry.events import EventRecorder

__all__ = ["Cluster", "ClusterSpec", "NodeStack", "build_cluster", "node_fault_mount"]

DIST_SETUPS = ("vanilla-lustre", "monarch", "monarch-p2p")


def node_fault_mount(node: int) -> str:
    """Fault-plan key for one node's local SSD (``/mnt/ssd@<node>``)."""
    return f"{SSD_MOUNT}@{node}"


@dataclass(frozen=True)
class ClusterSpec:
    """Static cluster description."""

    n_nodes: int = 2

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")


@dataclass
class NodeStack:
    """Everything one node owns."""

    index: int
    node: ComputeNode
    mounts: MountTable
    reader: DataReader
    #: the mounted local tier — a LocalFileSystem, or its fault-injecting
    #: proxy when a plan targets this node
    local_fs: Any = None
    monarch: Monarch | None = None


@dataclass
class Cluster:
    """A wired multi-node environment over one shared PFS."""

    spec: ClusterSpec
    setup: str
    sim: Simulator
    pfs: ParallelFileSystem
    nodes: list[NodeStack] = field(default_factory=list)
    shards: list[ShardInfo] = field(default_factory=list)
    manifest: ShardManifest | None = None
    env: ScaledEnvironment | None = None
    dataset: DatasetSpec | None = None
    #: shared network links (monarch-p2p only)
    fabric: Any = None
    #: the peer-cache service (monarch-p2p only)
    peers: Any = None
    #: armed fault injector, when a plan was supplied
    injector: FaultInjector | None = None
    #: the run's event recorder, when events were requested
    recorder: EventRecorder | None = None


def build_cluster(
    setup: str,
    dataset: DatasetSpec,
    calib: Calibration,
    cluster_spec: ClusterSpec,
    scale: float = 1.0,
    seed: int = 0,
    placement_policy: str = "firstfit",
    fault_plan: FaultPlan | None = None,
    record_events: bool = False,
) -> Cluster:
    """Build N node stacks over one shared PFS holding ``dataset``.

    ``fault_plan`` keys node-local tiers by :func:`node_fault_mount` and
    the shared PFS by ``PFS_MOUNT``.  ``record_events=True`` attaches an
    :class:`EventRecorder` (``cluster.recorder``) to the middleware and
    the peer-cache service for RunReport construction.
    """
    if setup not in DIST_SETUPS:
        raise ValueError(f"unknown distributed setup {setup!r}; expected {DIST_SETUPS}")
    sspec = scaled(dataset, scale)
    env = ScaledEnvironment.derive(calib, dataset, sspec, scale)
    sim = Simulator()
    rngs = RngRegistry(seed)
    recorder = EventRecorder(clock=lambda: sim.now) if record_events else None

    injector: FaultInjector | None = None
    if fault_plan is not None and not fault_plan.is_empty():
        injector = FaultInjector(sim, fault_plan, rngs.stream("faults"))

    def faulted(mount: str, fs):
        return fs if injector is None else injector.wrap_fs(mount, fs)

    interference = ARInterference(
        rngs.stream("interference"),
        mean_load=calib.interference_mean_load,
        sigma=calib.interference_sigma,
        rho=calib.interference_rho,
        interval=env.interference_interval,
        max_load=calib.interference_max_load,
    )
    pfs = ParallelFileSystem(
        sim,
        config=replace(calib.pfs, stripe_size=env.stripe_size,
                       mds_latency_s=env.mds_latency_s),
        interference=interference,
        rng=rngs.stream("pfs-jitter"),
        name="pfs",
    )
    manifest = build_shards(sspec)
    pfs_paths = materialize(manifest, pfs, DATASET_DIR)
    shards = shards_from_manifest(manifest, [PFS_MOUNT + p for p in pfs_paths])
    pfs_mounted = faulted(PFS_MOUNT, pfs)

    fabric = None
    peers = None
    if setup == "monarch-p2p":
        # Local import: peercache pulls in middleware, which this module
        # already imports — keep the module graph acyclic at import time.
        from repro.distributed.network import ClusterFabric
        from repro.distributed.peercache import PeerCacheReader, PeerCacheService

        fabric = ClusterFabric(sim, cluster_spec.n_nodes)
        peers = PeerCacheService(sim, fabric, recorder=recorder)

    cluster = Cluster(
        spec=cluster_spec, setup=setup, sim=sim, pfs=pfs,
        shards=shards, manifest=manifest, env=env, dataset=sspec,
        fabric=fabric, peers=peers, injector=injector, recorder=recorder,
    )
    for i in range(cluster_spec.n_nodes):
        mounts = MountTable()
        mounts.mount(PFS_MOUNT, pfs_mounted)
        node = ComputeNode(sim, calib.node)
        local_fs = None
        monarch: Monarch | None = None
        if setup in ("monarch", "monarch-p2p"):
            local_fs = faulted(node_fault_mount(i), LocalFileSystem(
                sim,
                Device(sim, calib.ssd, rng=rngs.stream(f"ssd-jitter-{i}")),
                capacity_bytes=env.local_capacity_bytes,
                name=f"local-{i}",
                page_cache=PageCache(env.page_cache_bytes,
                                     ram_bw_mib=calib.page_cache_ram_bw_mib),
            ))
            mounts.mount(SSD_MOUNT, local_fs)
            monarch = Monarch(
                sim,
                MonarchConfig(
                    tiers=(TierSpec(mount_point=SSD_MOUNT),
                           TierSpec(mount_point=PFS_MOUNT)),
                    dataset_dir=DATASET_DIR,
                    placement_threads=calib.placement_threads,
                    copy_chunk=env.copy_chunk,
                    policy=placement_policy,
                ),
                mounts,
                rng=rngs.stream(f"monarch-{i}"),
                recorder=recorder,
            )
            if peers is not None:
                peers.register(i, monarch)
                reader: DataReader = PeerCacheReader(peers, i, monarch)
            else:
                reader = MonarchReader(monarch)
        else:
            reader = PosixReader(mounts)
        cluster.nodes.append(NodeStack(
            index=i, node=node, mounts=mounts, reader=reader,
            local_fs=local_fs, monarch=monarch,
        ))
    return cluster
