"""Distributed data-parallel training (paper §VI future work).

"An interesting future research direction would be to expand MONARCH's
design to support distributed DL training.  This raises new questions
regarding data placement and caching … as multiple nodes will need access
to different data shards of the dataset."

This package makes those questions concrete and measurable:

* :mod:`~repro.distributed.cluster` — N compute nodes, each with its own
  local SSD tier (and optionally its own MONARCH instance), all hammering
  the *same* shared PFS.
* :mod:`~repro.distributed.partition` — the data-placement policies the
  paper alludes to: **static** sharding (node *i* always trains the same
  1/N of the dataset, so its tier converges) vs **reshuffle** (a fresh
  random partition every epoch, as unbiased distributed sampling wants,
  which invalidates most of each node's cache).
* :mod:`~repro.distributed.network` — a ring-allreduce cost model for the
  per-step gradient synchronization, plus the shared-link
  :class:`ClusterFabric` peer transfers contend on.
* :mod:`~repro.distributed.peercache` — the ``monarch-p2p`` setup's
  cluster-wide cache namespace over the node-local SSDs: a
  :class:`CacheDirectory` tracks which node holds which file, local
  misses fetch off a peer before falling back to the PFS, and peer death
  invalidates entries and re-replicates hot files.
* :mod:`~repro.distributed.trainer` — a synchronous data-parallel trainer:
  every global step waits for one batch from every node, runs all GPUs in
  lockstep, then pays the allreduce.
"""

from repro.distributed.cluster import (
    ClusterSpec,
    NodeStack,
    build_cluster,
    node_fault_mount,
)
from repro.distributed.network import AllReduceModel, ClusterFabric
from repro.distributed.partition import PartitionPolicy, partition_shards
from repro.distributed.peercache import (
    CacheDirectory,
    PeerCacheReader,
    PeerCacheService,
)
from repro.distributed.trainer import DistributedTrainer, DistributedResult

__all__ = [
    "AllReduceModel",
    "CacheDirectory",
    "ClusterFabric",
    "ClusterSpec",
    "DistributedResult",
    "DistributedTrainer",
    "NodeStack",
    "PartitionPolicy",
    "PeerCacheReader",
    "PeerCacheService",
    "build_cluster",
    "node_fault_mount",
    "partition_shards",
]
