"""Distributed data-parallel training (paper §VI future work).

"An interesting future research direction would be to expand MONARCH's
design to support distributed DL training.  This raises new questions
regarding data placement and caching … as multiple nodes will need access
to different data shards of the dataset."

This package makes those questions concrete and measurable:

* :mod:`~repro.distributed.cluster` — N compute nodes, each with its own
  local SSD tier (and optionally its own MONARCH instance), all hammering
  the *same* shared PFS.
* :mod:`~repro.distributed.partition` — the data-placement policies the
  paper alludes to: **static** sharding (node *i* always trains the same
  1/N of the dataset, so its tier converges) vs **reshuffle** (a fresh
  random partition every epoch, as unbiased distributed sampling wants,
  which invalidates most of each node's cache).
* :mod:`~repro.distributed.network` — a ring-allreduce cost model for the
  per-step gradient synchronization.
* :mod:`~repro.distributed.trainer` — a synchronous data-parallel trainer:
  every global step waits for one batch from every node, runs all GPUs in
  lockstep, then pays the allreduce.
"""

from repro.distributed.cluster import ClusterSpec, NodeStack, build_cluster
from repro.distributed.network import AllReduceModel
from repro.distributed.partition import PartitionPolicy, partition_shards
from repro.distributed.trainer import DistributedTrainer, DistributedResult

__all__ = [
    "AllReduceModel",
    "ClusterSpec",
    "DistributedResult",
    "DistributedTrainer",
    "NodeStack",
    "PartitionPolicy",
    "build_cluster",
    "partition_shards",
]
