"""Cluster-wide peer-to-peer cache tier over the nodes' local SSDs.

Plain ``monarch`` treats each node's SSD as a private cache: a local miss
goes straight to the shared PFS even when the very same file sits on a
neighbour's SSD (which, under per-epoch reshuffling, is the common case —
whoever trained on a shard last epoch still holds it).  The ``monarch-p2p``
setup joins the node-local tiers into one cluster cache namespace:

* :class:`CacheDirectory` — which live node holds which file.  Updated
  from each node's placement handler (publish on copy completion,
  withdraw on eviction) and from node liveness transitions (a dead node's
  entries are dropped wholesale), so an entry always names a live node
  that actually holds the file.
* :class:`PeerCacheService` — the cluster-side logic: routes local misses
  to a peer's SSD over the shared :class:`~repro.distributed.network
  .ClusterFabric` (contending with gradient sync), detects peer death
  (the peer's own tier quarantine, or a failed remote fetch), drops the
  dead node's directory entries and re-replicates its *hot* files — ones
  other nodes actually fetched — onto surviving nodes from the PFS.
* :class:`PeerCacheReader` — the framework-side shim: a
  :class:`~repro.core.middleware.MonarchReader` whose reads consult the
  directory before falling back to the PFS.  It speaks the fused
  continuation protocol: clean peer fetches run as a two-stage
  continuation chain, everything else replays the service generator
  continuation-style (bit-identical to the legacy path).

A peer fetch deliberately does **not** trigger a local placement: the
bytes are already on fast storage somewhere in the cluster, and copying
them again would double-store every reshuffled shard.  Local placement
still happens exactly as before for files *no* node holds (the read goes
through ``Monarch.read`` and its normal placement path, which is what
populates the directory in the first place).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.metadata import FileState
from repro.core.middleware import MonarchReader, _MonarchToken
from repro.framework.io_layer import continuation_capable
from repro.storage.base import IOFaultError
from repro.telemetry.events import NULL_RECORDER

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.middleware import Monarch
    from repro.distributed.network import ClusterFabric
    from repro.framework.io_layer import OpenFile

__all__ = ["CacheDirectory", "PeerCacheReader", "PeerCacheService", "PeerNodeStats"]


class CacheDirectory:
    """Which live node holds which file, cluster-wide.

    Invariants (property-tested):

    * every entry names a node that is currently live;
    * :meth:`drop_node` leaves no dangling entry for the dropped node;
    * :meth:`locate` is deterministic — the smallest eligible holder.
    """

    def __init__(self) -> None:
        #: file name -> set of live holder node indices
        self._holders: dict[str, set[int]] = {}
        #: node index -> names it holds (reverse index, for drop_node)
        self._held: dict[int, set[str]] = {}
        self._live: set[int] = set()

    def add_node(self, node: int) -> None:
        """Mark ``node`` live (idempotent)."""
        self._live.add(node)
        self._held.setdefault(node, set())

    def is_live(self, node: int) -> bool:
        """Whether ``node`` may appear in entries."""
        return node in self._live

    def live_nodes(self) -> list[int]:
        """Live node indices, ascending."""
        return sorted(self._live)

    def publish(self, name: str, node: int) -> bool:
        """Record that ``node`` holds ``name``; ignored for dead nodes."""
        if node not in self._live:
            return False
        self._holders.setdefault(name, set()).add(node)
        self._held[node].add(name)
        return True

    def withdraw(self, name: str, node: int) -> None:
        """Forget that ``node`` holds ``name`` (idempotent)."""
        holders = self._holders.get(name)
        if holders is not None:
            holders.discard(node)
            if not holders:
                del self._holders[name]
        held = self._held.get(node)
        if held is not None:
            held.discard(name)

    def drop_node(self, node: int) -> list[str]:
        """Mark ``node`` dead and purge its entries; returns what it held."""
        self._live.discard(node)
        names = sorted(self._held.pop(node, ()))
        for name in names:
            holders = self._holders.get(name)
            if holders is not None:
                holders.discard(node)
                if not holders:
                    del self._holders[name]
        return names

    def locate(self, name: str, exclude: int | None = None) -> int | None:
        """The smallest live holder of ``name`` other than ``exclude``."""
        holders = self._holders.get(name)
        if not holders:
            return None
        best: int | None = None
        for node in holders:
            if node == exclude:
                continue
            if best is None or node < best:
                best = node
        return best

    def holders(self, name: str) -> list[int]:
        """All live holders of ``name``, ascending."""
        return sorted(self._holders.get(name, ()))

    def files(self) -> list[str]:
        """Every file with at least one holder, sorted."""
        return sorted(self._holders)

    def __len__(self) -> int:
        """Number of (file, holder) entries."""
        return sum(len(h) for h in self._holders.values())


@dataclass
class PeerNodeStats:
    """One node's lifetime peer-cache accounting."""

    #: reads this node satisfied from a peer's SSD
    peer_hits: int = 0
    #: bytes this node fetched from peers
    peer_bytes: int = 0
    #: remote reads this node's SSD served to peers
    fetches_served: int = 0
    #: bytes this node's SSD served to peers
    bytes_served: int = 0
    #: files re-replicated *onto* this node after a peer death
    rereplications: int = 0


class PeerCacheService:
    """The cluster-side peer-cache logic shared by every node's reader."""

    def __init__(self, sim: Any, fabric: "ClusterFabric", recorder=None) -> None:
        self.sim = sim
        self.fabric = fabric
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.directory = CacheDirectory()
        self._monarchs: dict[int, "Monarch"] = {}
        self.stats: dict[int, PeerNodeStats] = {}
        self._down: set[int] = set()
        #: names ever served over the fabric — the re-replication set
        self._hot: set[str] = set()
        #: sim time each node was first declared dead
        self.node_down_s: dict[int, float] = {}
        #: sim time of the last successful fetch served *by* each node
        self.last_fetch_s_by_source: dict[int, float] = {}
        #: remote fetches that hit a faulted peer tier
        self.fetch_faults = 0
        # Deterministic re-replication spreading: rotate the target scan
        # start over live nodes so one survivor doesn't absorb everything.
        self._rr_counter = 0

    # -- wiring ------------------------------------------------------------
    def register(self, node: int, monarch: "Monarch") -> None:
        """Join one node's MONARCH instance to the cluster cache.

        Installs a residency listener on its placement handler (directory
        publish/withdraw) and chains liveness transitions onto its health
        tracker's quarantine/re-admission hooks — the middleware's own
        ``on_readmit`` (deferred-placement retry) keeps running first.
        """
        if node in self._monarchs:
            raise ValueError(f"node {node} already registered")
        self._monarchs[node] = monarch
        self.stats[node] = PeerNodeStats()
        self.directory.add_node(node)

        def residency(name: str, level: int, resident: bool, _n: int = node) -> None:
            self._on_residency(_n, name, resident)

        monarch.placement.residency_listener = residency
        health = monarch.health

        def quarantined(level: int, _n: int = node) -> None:
            if level != health.pfs_level:
                self.node_down(_n)

        health.on_quarantine = quarantined
        prev_readmit = health.on_readmit

        def readmitted(level: int, _n: int = node) -> None:
            if prev_readmit is not None:
                prev_readmit(level)
            self.node_up(_n)

        health.on_readmit = readmitted

    def _on_residency(self, node: int, name: str, resident: bool) -> None:
        if resident:
            if node not in self._down:
                self.directory.publish(name, node)
        else:
            self.directory.withdraw(name, node)

    # -- liveness ----------------------------------------------------------
    def node_down(self, node: int) -> None:
        """Declare ``node``'s SSD unreachable; purge and re-replicate.

        Idempotent.  Every directory entry pointing at the node is
        dropped immediately (no further peer fetch will target it), and
        the *hot* files it held — ones peers actually fetched — are
        re-staged onto surviving nodes from the PFS, as background
        speculative copies that drain behind demand traffic.
        """
        if node in self._down or node not in self._monarchs:
            return
        self._down.add(node)
        self.node_down_s.setdefault(node, self.sim.now)
        dropped = self.directory.drop_node(node)
        if self.recorder.enabled:
            self.recorder.emit("peer.node_down", f"n{node}", entries=len(dropped))
        self._rereplicate(dropped)

    def node_up(self, node: int) -> None:
        """A dead node's tier was re-admitted: restore its directory entries.

        The SSD's contents survived the outage (the fault model fails
        operations, not media), so everything still CACHED there is
        published again.
        """
        if node not in self._down:
            return
        self._down.discard(node)
        self.directory.add_node(node)
        monarch = self._monarchs[node]
        restored = 0
        for level, _driver in monarch.hierarchy.upper_levels():
            for info in monarch.placement.cached_on_level(level):
                self.directory.publish(info.name, node)
                restored += 1
        if self.recorder.enabled:
            self.recorder.emit("peer.node_up", f"n{node}", entries=restored)

    def _rereplicate(self, names: list[str]) -> None:
        """Re-stage a dead node's hot files onto surviving nodes."""
        live = [n for n in sorted(self._monarchs) if n not in self._down]
        if not live:
            return
        for name in names:
            if name not in self._hot:
                continue
            if self.directory.locate(name) is not None:
                continue  # a surviving replica exists; nothing to do
            for k in range(len(live)):
                target = live[(self._rr_counter + k) % len(live)]
                monarch = self._monarchs[target]
                info = monarch.metadata.get(name)
                if info is None or info.state is not FileState.PFS_ONLY:
                    continue
                if monarch.placement.place(
                    info, have_content=False, mark_on_fail=False, speculative=True
                ):
                    self.stats[target].rereplications += 1
                    self._rr_counter += 1
                    if self.recorder.enabled:
                        self.recorder.emit(
                            "peer.rereplicate", name, target=target
                        )
                    break

    # -- the read path -----------------------------------------------------
    def read(self, node: int, name: str, offset: int, nbytes: int, job: str = ""):
        """Serve one read for ``node`` (generator; returns bytes read).

        Local fast-tier hits and mid-copy reads go straight through the
        node's own ``Monarch.read`` (preserving its placement, expedite
        and health machinery).  A read the node would otherwise send to
        the PFS first consults the directory; on a hit the bytes come off
        the peer's SSD and over the fabric instead.
        """
        monarch = self._monarchs[node]
        info = monarch.metadata.lookup(name)
        if info.state in (FileState.PFS_ONLY, FileState.UNPLACEABLE):
            src = self.directory.locate(name, exclude=node)
            if src is not None:
                n = yield from self._peer_fetch(node, src, name, offset, nbytes)
                if n is not None:
                    return n
        n = yield from monarch.read(name, offset, nbytes, job)
        return n

    def _peer_fetch(self, node: int, src: int, name: str, offset: int, nbytes: int):
        """Read off node ``src``'s SSD and ship the bytes to ``node``.

        Returns None on any failure — the caller falls back to the
        node's normal (PFS) read path.  A faulted peer tier is treated
        as a node death: the fault is recorded against the peer's own
        health tracker and its directory entries are dropped, so no
        later read retargets the dead node.
        """
        peer = self._monarchs[src]
        pinfo = peer.metadata.get(name)
        if pinfo is None or pinfo.state is not FileState.CACHED:
            self.directory.withdraw(name, src)
            return None
        level = pinfo.level
        driver = peer.hierarchy[level]
        try:
            handle = yield from driver._handle_for(name)
            n = yield from driver.fs.pread(handle, offset, nbytes)
        except IOFaultError:
            self.fetch_faults += 1
            peer.health.record_fault(level)
            peer.stats.tier_faults[level] += 1
            if self.recorder.enabled:
                self.recorder.emit("peer.fetch_failed", name, src=src, dst=node)
            self.node_down(src)
            return None
        yield from self.fabric.transfer(src, node, n)
        self._hot.add(name)
        dst_stats = self.stats[node]
        dst_stats.peer_hits += 1
        dst_stats.peer_bytes += n
        src_stats = self.stats[src]
        src_stats.fetches_served += 1
        src_stats.bytes_served += n
        self.last_fetch_s_by_source[src] = self.sim.now
        if self.recorder.enabled:
            self.recorder.emit("peer.fetch", name, src=src, dst=node, nbytes=n)
        return n

    # -- aggregate views ---------------------------------------------------
    @property
    def total_peer_hits(self) -> int:
        """Reads served from a peer, cluster-wide."""
        return sum(s.peer_hits for s in self.stats.values())

    @property
    def total_peer_bytes(self) -> int:
        """Bytes moved over the fabric for peer reads, cluster-wide."""
        return sum(s.peer_bytes for s in self.stats.values())

    def peer_hits_of(self, node: int) -> int:
        """Reads ``node`` satisfied from peers."""
        stats = self.stats.get(node)
        return stats.peer_hits if stats is not None else 0

    def is_down(self, node: int) -> bool:
        """Whether ``node`` is currently declared dead."""
        return node in self._down


class _PeerFetchFlight:
    """Pooled continuation chain for one fused peer fetch.

    Stage one (``__call__``) fires when the peer's SSD read completes and
    issues the fabric transfer in that same dispatch slot — where the
    legacy ``_peer_fetch`` generator resumes into ``fabric.transfer``.
    Stage two (``_transferred``) fires when both links release and
    carries the generator's post-transfer bookkeeping (hot-set, per-node
    stats, fetch timestamps, the recorder event) before chaining to the
    pipeline's callback.
    """

    __slots__ = ("reader", "name", "src", "n", "cb")

    def __call__(self, ev: Any) -> None:
        reader = self.reader
        svc = reader.service
        svc.fabric.transfer_begin(self.src, reader.node, self.n, self._transferred)

    def _transferred(self, ev: Any) -> None:
        reader = self.reader
        svc = reader.service
        name = self.name
        src = self.src
        n = self.n
        svc._hot.add(name)
        dst_stats = svc.stats[reader.node]
        dst_stats.peer_hits += 1
        dst_stats.peer_bytes += n
        src_stats = svc.stats[src]
        src_stats.fetches_served += 1
        src_stats.bytes_served += n
        svc.last_fetch_s_by_source[src] = svc.sim.now
        if svc.recorder.enabled:
            svc.recorder.emit("peer.fetch", name, src=src, dst=reader.node, nbytes=n)
        cb = self.cb
        self.cb = None
        reader._fetch_pool.append(self)
        cb(ev)


#: states whose reads consult the peer directory before the PFS
_PFS_STATES = (FileState.PFS_ONLY, FileState.UNPLACEABLE)


class PeerCacheReader(MonarchReader):
    """MonarchReader whose PFS-bound reads first try the peer directory.

    Speaks the fused continuation protocol like its base class, with one
    more inlined shape: a clean peer-directory hit — remote SSD read plus
    fabric transfer — runs as a two-stage continuation chain
    (:class:`_PeerFetchFlight`) instead of the ``PeerCacheService.read``
    generator.  Local fast-tier hits inline through the base class; any
    read that can't be inlined (peer handle not yet open, stale directory
    entry, fault-wrapped backend, local miss) replays the unmodified
    service generator continuation-style, so the fused and generator
    modes stay bit-identical.
    """

    def __init__(self, service: PeerCacheService, node: int, monarch: "Monarch",
                 job: str = "") -> None:
        super().__init__(monarch, job)
        self.service = service
        self.node = node
        self._fetch_pool: list[_PeerFetchFlight] = []

    def pread(self, f: "OpenFile", offset: int, nbytes: int):
        n = yield from self.service.read(self.node, f.path, offset, nbytes, self.job)
        return n

    def pread_begin(self, f: "OpenFile", offset: int, nbytes: int, cb: Any) -> int:
        """Fused pread with the peer-fetch fast path.

        The pre-checks mirror the conditions under which the legacy
        ``service.read`` / ``_peer_fetch`` pair runs its clean two-yield
        shape (peer SSD read, then fabric transfer) — and they are pure:
        a miss falls through to the trampolined generator, which redoes
        the directory lookup and performs any side effects (stale-entry
        withdrawal, fault handling) itself, exactly as the legacy path
        would have.
        """
        svc = self.service
        tok: _MonarchToken = f.token
        info = tok.info
        state = info.state
        if state is FileState.CACHED:
            # Locally resident: the directory is never consulted; the
            # base class inlines the healthy fast-tier hit.
            return super().pread_begin(f, offset, nbytes, cb)
        if state in _PFS_STATES:
            src = svc.directory.locate(info.name, exclude=self.node)
            if src is not None:
                peer = svc._monarchs[src]
                pinfo = peer.metadata.get(info.name)
                if pinfo is not None and pinfo.state is FileState.CACHED:
                    driver = peer.hierarchy[pinfo.level]
                    if continuation_capable(driver.fs):
                        handle = driver._handles.get(tok.key)
                        if handle is not None:
                            pool = self._fetch_pool
                            flight = pool.pop() if pool else _PeerFetchFlight()
                            flight.reader = self
                            flight.name = info.name
                            flight.src = src
                            flight.cb = cb
                            n = driver.fs.pread_begin(handle, offset, nbytes, flight)
                            flight.n = n
                            return n
        return self._legacy_begin(
            svc.read(self.node, info.name, offset, nbytes, self.job),
            info,
            offset,
            nbytes,
            cb,
        )
