"""Dataset specifications and synthetic sample-size models.

A :class:`DatasetSpec` fully describes a training dataset: how many
samples, how big each is (a deterministic draw from a
:class:`SampleSizeModel`), and how they are packed into record shards.
Everything is derived from the spec + a seed, so the same spec always
produces byte-identical shard layouts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["DatasetSpec", "SampleSizeModel"]


@dataclass(frozen=True)
class SampleSizeModel:
    """Lognormal sample-size distribution, clipped to sane bounds.

    JPEG-compressed ImageNet samples are well described by a lognormal:
    most around the mean, a long tail of large images.  ``mean_bytes`` is
    the arithmetic mean of the clipped distribution's target; ``sigma``
    controls spread.
    """

    mean_bytes: int
    sigma: float = 0.35
    min_bytes: int = 1024
    max_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.mean_bytes <= 0:
            raise ValueError(f"mean_bytes must be positive, got {self.mean_bytes}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if self.min_bytes < 1:
            raise ValueError("min_bytes must be >= 1")

    def draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` sample sizes (int64 bytes)."""
        if n < 0:
            raise ValueError(f"negative count: {n}")
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if self.sigma == 0:
            return np.full(n, self.mean_bytes, dtype=np.int64)
        # mu chosen so the (unclipped) lognormal mean equals mean_bytes
        mu = np.log(self.mean_bytes) - 0.5 * self.sigma**2
        sizes = rng.lognormal(mean=mu, sigma=self.sigma, size=n)
        sizes = np.clip(sizes, self.min_bytes, self.mean_bytes * self.max_factor)
        return sizes.astype(np.int64)


@dataclass(frozen=True)
class DatasetSpec:
    """Complete description of a synthetic training dataset."""

    name: str
    n_samples: int
    size_model: SampleSizeModel
    #: target shard size in bytes (samples are packed until this is exceeded)
    shard_target_bytes: int
    #: seed for the size draws and packing (independent of run seeds)
    layout_seed: int = 7

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {self.n_samples}")
        if self.shard_target_bytes <= 0:
            raise ValueError("shard_target_bytes must be positive")

    @property
    def approx_total_bytes(self) -> int:
        """Expected payload bytes (mean size × count), before framing."""
        return self.n_samples * self.size_model.mean_bytes

    def sample_sizes(self) -> np.ndarray:
        """Deterministic per-sample payload sizes for this spec."""
        name_key = zlib.crc32(self.name.encode("utf-8"))
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.layout_seed, spawn_key=(name_key,))
        )
        return self.size_model.draw(rng, self.n_samples)
