"""CRC-32C (Castagnoli) and the TFRecord CRC mask.

TFRecord frames protect both the length field and the payload with a
*masked* CRC-32C.  We implement CRC-32C with a table-driven routine (a
256-entry table built once at import) plus the standard mask/unmask
transform.  Pure Python is fast enough here because the byte-level codec is
only used in unit tests and small utilities, never inside the simulation
hot path.
"""

from __future__ import annotations

__all__ = ["crc32c", "mask_crc", "unmask_crc"]

_CRC32C_POLY = 0x82F63B78  # reversed Castagnoli polynomial


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()

_MASK_DELTA = 0xA282EAD8
_U32 = 0xFFFFFFFF


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C of ``data``, optionally continuing from a previous value."""
    crc = (crc ^ _U32) & _U32
    for b in data:
        crc = _TABLE[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return (crc ^ _U32) & _U32


def mask_crc(crc: int) -> int:
    """Apply the TFRecord rotate-and-add mask to a raw CRC."""
    crc &= _U32
    return (((crc >> 15) | (crc << 17)) + _MASK_DELTA) & _U32


def unmask_crc(masked: int) -> int:
    """Invert :func:`mask_crc`."""
    rot = (masked - _MASK_DELTA) & _U32
    return ((rot >> 17) | (rot << 15)) & _U32
