"""Byte-level record-file codec (TFRecord-compatible framing).

Frame layout per record::

    uint64  length            (little-endian)
    uint32  masked crc32c(length bytes)
    bytes   payload[length]
    uint32  masked crc32c(payload)

so a record of ``n`` payload bytes occupies ``n + 16`` bytes on disk.  The
simulation only needs that arithmetic (see :func:`record_frame_size`), but
the full codec is implemented so the format logic is real and testable.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from typing import BinaryIO

from repro.data.crc import crc32c, mask_crc

__all__ = [
    "RECORD_OVERHEAD",
    "RecordCorruptionError",
    "RecordReader",
    "RecordWriter",
    "record_frame_size",
]

_LEN_STRUCT = struct.Struct("<Q")
_CRC_STRUCT = struct.Struct("<I")

#: framing bytes added around each payload (8 + 4 + 4)
RECORD_OVERHEAD = _LEN_STRUCT.size + 2 * _CRC_STRUCT.size


class RecordCorruptionError(ValueError):
    """A frame failed its CRC or was truncated."""


def record_frame_size(payload_len: int) -> int:
    """On-disk size of one record with a ``payload_len``-byte payload."""
    if payload_len < 0:
        raise ValueError(f"negative payload length: {payload_len}")
    return payload_len + RECORD_OVERHEAD


class RecordWriter:
    """Appends framed records to a binary stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._count = 0

    @property
    def records_written(self) -> int:
        """Number of records written so far."""
        return self._count

    def write(self, payload: bytes) -> int:
        """Write one record; returns the bytes appended to the stream."""
        header = _LEN_STRUCT.pack(len(payload))
        self._stream.write(header)
        self._stream.write(_CRC_STRUCT.pack(mask_crc(crc32c(header))))
        self._stream.write(payload)
        self._stream.write(_CRC_STRUCT.pack(mask_crc(crc32c(payload))))
        self._count += 1
        return record_frame_size(len(payload))

    def flush(self) -> None:
        """Flush the underlying stream."""
        self._stream.flush()


class RecordReader:
    """Iterates framed records from a binary stream, verifying CRCs."""

    def __init__(self, stream: BinaryIO, verify: bool = True) -> None:
        self._stream = stream
        self._verify = verify

    def __iter__(self) -> Iterator[bytes]:
        while True:
            payload = self.read_one()
            if payload is None:
                return
            yield payload

    def read_one(self) -> bytes | None:
        """Read the next record, or ``None`` at a clean end-of-stream."""
        header = self._stream.read(_LEN_STRUCT.size)
        if not header:
            return None
        if len(header) < _LEN_STRUCT.size:
            raise RecordCorruptionError("truncated length field")
        (length,) = _LEN_STRUCT.unpack(header)
        len_crc_raw = self._stream.read(_CRC_STRUCT.size)
        if len(len_crc_raw) < _CRC_STRUCT.size:
            raise RecordCorruptionError("truncated length CRC")
        if self._verify:
            (masked,) = _CRC_STRUCT.unpack(len_crc_raw)
            if masked != mask_crc(crc32c(header)):
                raise RecordCorruptionError("length CRC mismatch")
        payload = self._stream.read(length)
        if len(payload) < length:
            raise RecordCorruptionError(
                f"truncated payload: wanted {length}, got {len(payload)}"
            )
        data_crc_raw = self._stream.read(_CRC_STRUCT.size)
        if len(data_crc_raw) < _CRC_STRUCT.size:
            raise RecordCorruptionError("truncated payload CRC")
        if self._verify:
            (masked,) = _CRC_STRUCT.unpack(data_crc_raw)
            if masked != mask_crc(crc32c(payload)):
                raise RecordCorruptionError("payload CRC mismatch")
        return payload
