"""Pack samples into record shards; shard manifests.

The packing mirrors how ImageNet is converted to TFRecords: samples are
appended to the current shard until it would exceed the target shard size,
then a new shard starts.  Offsets use the real framing arithmetic from
:mod:`repro.data.records`, so a manifest could be replayed byte-for-byte by
the real codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import DatasetSpec
from repro.data.records import record_frame_size

__all__ = ["RecordEntry", "ShardLayout", "ShardManifest", "build_shards"]


@dataclass(frozen=True)
class RecordEntry:
    """One sample's frame inside a shard."""

    sample_id: int
    offset: int
    frame_len: int
    payload_len: int


@dataclass
class ShardLayout:
    """One record shard: filename + the frames it contains."""

    filename: str
    records: list[RecordEntry] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        """Total on-disk size of the shard."""
        if not self.records:
            return 0
        last = self.records[-1]
        return last.offset + last.frame_len

    @property
    def n_records(self) -> int:
        """Number of records packed into the shard."""
        return len(self.records)


@dataclass
class ShardManifest:
    """Full dataset layout: every shard of a :class:`DatasetSpec`."""

    spec: DatasetSpec
    shards: list[ShardLayout] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Total on-disk bytes across shards (framing included)."""
        return sum(s.size_bytes for s in self.shards)

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def n_samples(self) -> int:
        """Number of samples across all shards."""
        return sum(s.n_records for s in self.shards)

    def shard_sizes(self) -> np.ndarray:
        """Array of shard sizes in bytes."""
        return np.array([s.size_bytes for s in self.shards], dtype=np.int64)


def build_shards(spec: DatasetSpec, name_prefix: str = "train") -> ShardManifest:
    """Deterministically pack ``spec``'s samples into shards.

    Samples are packed in id order (the conversion pipeline's order — the
    *training-time* order is the framework's shuffle, not this one).
    """
    sizes = spec.sample_sizes()
    manifest = ShardManifest(spec=spec)
    current = ShardLayout(filename="")
    offset = 0
    for sample_id, payload_len in enumerate(sizes):
        frame = record_frame_size(int(payload_len))
        if current.records and offset + frame > spec.shard_target_bytes:
            manifest.shards.append(current)
            current = ShardLayout(filename="")
            offset = 0
        current.records.append(
            RecordEntry(
                sample_id=sample_id,
                offset=offset,
                frame_len=frame,
                payload_len=int(payload_len),
            )
        )
        offset += frame
    if current.records:
        manifest.shards.append(current)
    width = max(5, len(str(len(manifest.shards))))
    total = len(manifest.shards)
    for i, shard in enumerate(manifest.shards):
        shard.filename = f"{name_prefix}-{i:0{width}d}-of-{total:0{width}d}.tfrecord"
    return manifest
