"""Dataset substrate: record format, synthetic datasets, sharding.

Two layers:

* **Byte-level** — :mod:`~repro.data.records` implements a real,
  TFRecord-compatible framing codec (length + masked CRC-32C header, CRC'd
  payload) over ordinary Python file objects.  This is the format logic the
  paper's datasets use, implemented and tested for real.
* **Virtual** — inside the simulation, files carry sizes not bytes, so
  :mod:`~repro.data.sharding` lays out samples into record shards as a
  *manifest* (per-record offsets/lengths computed with the same framing
  arithmetic), and :mod:`~repro.data.virtual` materializes that manifest
  into a simulated file system.

:mod:`~repro.data.imagenet` defines the paper's two dataset presets
(900 k images / 100 GiB and 3 M images / 200 GiB) with a global scale knob.
"""

from repro.data.dataset import DatasetSpec, SampleSizeModel
from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G, scaled
from repro.data.records import (
    RecordCorruptionError,
    RecordReader,
    RecordWriter,
    record_frame_size,
)
from repro.data.sharding import ShardLayout, ShardManifest, build_shards
from repro.data.virtual import materialize

__all__ = [
    "DatasetSpec",
    "IMAGENET_100G",
    "IMAGENET_200G",
    "RecordCorruptionError",
    "RecordReader",
    "RecordWriter",
    "SampleSizeModel",
    "ShardLayout",
    "ShardManifest",
    "build_shards",
    "materialize",
    "record_frame_size",
    "scaled",
]
