"""ImageNet-1k dataset presets matching the paper's two variants.

* 100 GiB / 900 k images — the truncated ImageNet-1k used in §II and the
  first half of §IV (fits the 115 GiB local SSD partition).
* 200 GiB / 3 M images — the extended variant of §IV that does *not* fit
  locally, forcing MONARCH's partial-placement path.

Mean sample sizes follow from the paper's numbers: 100 GiB / 900 k ≈
116 KiB per image; 200 GiB / 3 M ≈ 70 KiB per image.  Shards target
128 MiB, the conventional TFRecord conversion shard size.

Simulating every byte at full scale is slow in Python, so :func:`scaled`
shrinks a preset by a linear factor — sample count and shard target scale
together, keeping shard *count* realistic at small scales while preserving
the bytes-per-second ratios the experiments depend on.  Tier capacities
must be scaled with the same factor (the experiment runner does this).
"""

from __future__ import annotations

from dataclasses import replace

from repro.data.dataset import DatasetSpec, SampleSizeModel
from repro.storage.blockmath import GIB, KIB, MIB

__all__ = ["IMAGENET_100G", "IMAGENET_200G", "scaled"]

#: §II / §IV-A first dataset: 900 k images, ~100 GiB.
IMAGENET_100G = DatasetSpec(
    name="imagenet-1k-100g",
    n_samples=900_000,
    size_model=SampleSizeModel(mean_bytes=int(100 * GIB / 900_000)),
    shard_target_bytes=128 * MIB,
)

#: §IV-A second dataset: 3 M images, ~200 GiB (exceeds the local tier).
IMAGENET_200G = DatasetSpec(
    name="imagenet-1k-200g",
    n_samples=3_000_000,
    size_model=SampleSizeModel(mean_bytes=int(200 * GIB / 3_000_000)),
    shard_target_bytes=128 * MIB,
)


def scaled(spec: DatasetSpec, scale: float) -> DatasetSpec:
    """Shrink ``spec`` by ``scale`` ∈ (0, 1], preserving per-sample sizes.

    Total bytes, sample count and shard target all scale linearly, so the
    dataset keeps the same number-of-shards-to-local-capacity geometry once
    capacities are scaled by the same factor.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    if scale == 1:
        return spec
    n = max(64, int(round(spec.n_samples * scale)))
    # Keep at least ~64 samples per shard so shards stay much larger than
    # the framework's (fixed) 256 KiB read chunk — otherwise the
    # partial-read/full-fetch dynamics the paper exploits degenerate at
    # small scales: the background copy must complete well within one
    # shard's consumption window, as it does at full scale.
    floor = max(256 * KIB, 64 * spec.size_model.mean_bytes)
    shard_target = max(floor, int(round(spec.shard_target_bytes * scale)))
    return replace(
        spec,
        name=f"{spec.name}-x{scale:g}",
        n_samples=n,
        shard_target_bytes=shard_target,
    )
