"""Materialize a shard manifest into a simulated file system.

The PFS starts a job already holding the dataset (staging it is outside
the paper's scope), so materialization is an untimed bookkeeping step: one
:meth:`~repro.storage.pfs.ParallelFileSystem.add_file` per shard.
"""

from __future__ import annotations

import posixpath

from repro.data.sharding import ShardManifest
from repro.storage.pfs import ParallelFileSystem

__all__ = ["materialize"]


def materialize(
    manifest: ShardManifest,
    pfs: ParallelFileSystem,
    directory: str = "/dataset",
) -> list[str]:
    """Create every shard of ``manifest`` in ``pfs`` under ``directory``.

    Returns the list of created paths (PFS-relative), in shard order.
    """
    paths: list[str] = []
    for shard in manifest.shards:
        path = posixpath.join(directory, shard.filename)
        pfs.add_file(path, shard.size_bytes)
        paths.append(path)
    return paths
