"""MONARCH configuration.

Set up by the "system designer" before the job starts (paper §III-B): the
ordered storage tiers, the placement-handler thread-pool size (the paper's
evaluation uses 6), and the copy chunking used for background fetches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.storage.blockmath import MIB

__all__ = ["MonarchConfig", "TierSpec"]


@dataclass(frozen=True)
class TierSpec:
    """One configured storage tier.

    ``mount_point`` names the backend in the global mount table; ``quota``
    optionally caps how much of the backend MONARCH may use (defaults to
    the backend's own capacity).  The last configured tier is the read-only
    PFS that already holds the dataset.
    """

    mount_point: str
    quota_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.quota_bytes is not None and self.quota_bytes <= 0:
            raise ValueError("quota_bytes must be positive when given")


@dataclass(frozen=True)
class MonarchConfig:
    """Full middleware configuration."""

    #: ordered tiers, fastest first; the last one is the read-only PFS
    tiers: tuple[TierSpec, ...] = ()
    #: dataset directory on the last tier, traversed at startup
    dataset_dir: str = "/dataset"
    #: background placement thread-pool size (paper evaluation: 6)
    placement_threads: int = 6
    #: chunk size for background full-file copies
    copy_chunk: int = 1 * MIB
    #: enable the full-file fetch on partial reads (paper §III-B); the
    #: ABL-FETCH ablation turns this off
    full_fetch_on_partial_read: bool = True
    #: eviction policy name: "none" (paper default), "lru", "fifo", "random"
    eviction: str = "none"
    #: placement policy name: "firstfit" (paper default, bit-identical to
    #: the pre-interface behaviour), "heat" (LFU/LRU promotion+eviction)
    #: or "predictor" (epoch-1-observing admission with eager placement);
    #: see :mod:`repro.core.policy`
    policy: str = "firstfit"
    #: use the analytic bulk-transfer fast path for background copies.
    #: Purely an execution strategy: simulated results are identical with
    #: it off (the ``REPRO_DISABLE_BULK_IO=1`` escape hatch forces that).
    bulk_io: bool = True
    #: transient-fault retries for a background copy before it gives up
    copy_retries: int = 3
    #: transient-fault retries for a PFS (last-resort) read before the
    #: error propagates to the framework
    read_retries: int = 3
    #: base of the exponential retry backoff (doubles per attempt)
    retry_backoff_s: float = 0.01
    #: consecutive faults on a tier before it is quarantined
    quarantine_threshold: int = 3
    #: cooldown before a quarantined tier is probed for re-admission
    probe_interval_s: float = 1.0

    def bulk_io_enabled(self) -> bool:
        """Effective bulk-I/O setting, honouring ``REPRO_DISABLE_BULK_IO``."""
        if os.environ.get("REPRO_DISABLE_BULK_IO", "").strip().lower() in ("1", "true", "yes"):
            return False
        return self.bulk_io

    def __post_init__(self) -> None:
        if len(self.tiers) < 2:
            raise ValueError("MONARCH needs at least two tiers (one local + the PFS)")
        if self.placement_threads < 1:
            raise ValueError("placement_threads must be >= 1")
        if self.copy_chunk < 1:
            raise ValueError("copy_chunk must be >= 1")
        if self.eviction not in ("none", "lru", "fifo", "random"):
            raise ValueError(f"unknown eviction policy {self.eviction!r}")
        # Kept as a literal tuple (not an import) so the config module
        # stays dependency-free; cross-checked against the policy
        # registry by tests/core/test_policy.py.
        if self.policy not in ("firstfit", "heat", "predictor"):
            raise ValueError(f"unknown placement policy {self.policy!r}")
        if self.copy_retries < 0 or self.read_retries < 0:
            raise ValueError("retry counts must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        if self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
