"""Storage drivers: the per-tier I/O abstraction (paper §III-A).

Each tier of the hierarchy is represented by a *storage driver*, "an
object that abstracts the I/O logic performed under a given storage
backend" and carries its governing properties — mount path and storage
quota/occupancy.  Two concrete drivers cover the paper's setups:

* :class:`LocalDriver` — read-write tier on a node-local file system,
  starting empty, with quota-aware occupancy accounting.
* :class:`PFSDriver` — the read-only last tier (Lustre) that owns the
  dataset.

Drivers keep per-file open handles cached so repeated reads of a cached
file do not pay a metadata round trip each time — mirroring the C++
prototype, which holds descriptors in its lookup tables.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.storage.base import FileHandle, FileSystem, NoSpaceError

__all__ = ["LocalDriver", "PFSDriver", "StorageDriver"]


class StorageDriver:
    """Abstract I/O logic + state of one storage tier."""

    def __init__(self, fs: FileSystem, mount_point: str, quota_bytes: int | None) -> None:
        self.fs = fs
        self.mount_point = mount_point.rstrip("/") or "/"
        cap = fs.capacity_bytes
        if quota_bytes is None:
            self._quota = cap  # may be None for unbounded backends
        else:
            self._quota = quota_bytes if cap is None else min(quota_bytes, cap)
        self._handles: dict[str, FileHandle] = {}

    # -- properties governing the backend (paper: path, quota, occupancy) --
    @property
    def quota_bytes(self) -> int | None:
        """Capacity MONARCH may use on this tier (None = unbounded)."""
        return self._quota

    @property
    def occupancy_bytes(self) -> int:
        """Bytes currently stored on the backend."""
        return self.fs.used_bytes

    def free_bytes(self) -> int | None:
        """Remaining quota (None = unbounded)."""
        if self._quota is None:
            return None
        return self._quota - self.fs.used_bytes

    def fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more would stay within quota."""
        free = self.free_bytes()
        return free is None or nbytes <= free

    @property
    def writable(self) -> bool:
        """Read-write tiers accept placements; the PFS tier does not."""
        return True

    # -- path mapping -----------------------------------------------------
    def local_path(self, name: str) -> str:
        """Backend-relative path where ``name`` lives on this tier."""
        return "/" + name.lstrip("/")

    def has(self, name: str) -> bool:
        """Whether this tier currently holds ``name``."""
        return self.fs.exists(self.local_path(name))

    # -- I/O ---------------------------------------------------------------
    def _handle_for(self, name: str, flags: str = "r") -> Generator[Any, Any, FileHandle]:
        key = self.local_path(name)
        handle = self._handles.get(key)
        if handle is None or (flags != "r" and handle.flags == "r"):
            handle = yield from self.fs.open(key, flags)
            self._handles[key] = handle
        return handle

    def read(self, name: str, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """Timed read of ``name`` from this tier."""
        handle = yield from self._handle_for(name)
        n = yield from self.fs.pread(handle, offset, nbytes)
        return n

    def write(self, name: str, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """Timed write; raises :class:`NoSpaceError` beyond the quota."""
        if not self.fits(max(0, offset + nbytes - (self.fs.file_size(self.local_path(name)) if self.has(name) else 0))):
            raise NoSpaceError(f"tier {self.mount_point}: quota exceeded for {name}")
        handle = yield from self._handle_for(name, "a")
        n = yield from self.fs.pwrite(handle, offset, nbytes)
        return n

    def remove(self, name: str) -> None:
        """Drop ``name`` from this tier (eviction ablations, cleanup).

        The cached :class:`FileHandle` is dropped *and* truncated: handles
        are cheap descriptors that may outlive the file, so any stale copy
        held elsewhere must observe EOF (reads return 0 bytes) rather than
        the pre-eviction size — a post-eviction re-read then re-opens a
        fresh entry instead of consuming phantom bytes.
        """
        key = self.local_path(name)
        stale = self._handles.pop(key, None)
        self.fs.unlink(key)
        if stale is not None:
            stale.meta.size = 0

    def drop_handles(self) -> None:
        """Forget cached handles (job teardown)."""
        self._handles.clear()


class LocalDriver(StorageDriver):
    """Read-write tier on node-local storage; starts empty (paper §III-A)."""


class PFSDriver(StorageDriver):
    """The read-only last tier: holds the full dataset, never written."""

    @property
    def writable(self) -> bool:
        return False

    def read_sequential(self, name: str, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """Streaming read used by background full-file fetches.

        Marked sequential so the PFS model serves it at full aggregate
        bandwidth (striped readahead), which the framework's scattered
        chunk reads do not get.
        """
        handle = yield from self._handle_for(name)
        fs = self.fs
        pread = getattr(fs, "pread")
        try:
            n = yield from pread(handle, offset, nbytes, sequential=True)
        except TypeError:
            n = yield from pread(handle, offset, nbytes)
        return n

    def write(self, name: str, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        raise PermissionError("the PFS tier is a read-only data source")
        yield  # pragma: no cover - makes this a generator for interface parity

    def listdir(self, directory: str) -> Generator[Any, Any, list[str]]:
        """Timed dataset-directory listing (metadata-container init)."""
        entries = yield from self.fs.listdir(directory)
        return entries

    def stat(self, path: str) -> Generator[Any, Any, Any]:
        """Timed stat (metadata-container init)."""
        meta = yield from self.fs.stat(path)
        return meta
