"""Epoch-1-observing admission predictor with eager placement.

In the spirit of the Bring-Your-Own-Model warehouse-scale placement
paper: instead of admitting every file on its first read forever
(first-fit), the policy *observes* the job's early reads, estimates
per-file re-read counts from them, and acts on the estimate.

The signal is sequential consumption: the policy accumulates the bytes
each file's reads cover — PFS reads through :meth:`admit`, cached and
mid-copy reads through :meth:`on_access`, so an admitted file keeps
reporting.  A DL input pipeline streams its shards end-to-end every
epoch, so epoch-1 reads that cover a growing share of the *whole
namespace* mean every byte read so far will be read again each later
epoch (re-read estimate >= 1 per epoch), while a workload that only ever
touches slivers of its files is likely sparse, sampling traffic that a
cache cannot help.  Two triggers flip an owner's verdict to **hot**:

* **aggregate consumption** — the owner's reads covered at least
  ``hot_fraction`` of its namespace bytes.  This is the early trigger: a
  scanning pipeline crosses 1 % of its dataset moments into epoch 1,
  long before any single shard finishes (``cycle_length`` readers
  interleave, so individual passes complete late).
* **completed passes** — ``window`` files finished a full sequential
  pass (a pass is ``full_pass_ratio`` of the size: record shards carry
  trailing padding the pipeline never reads).  This is the safety net
  for single-file or tiny namespaces where a fraction is meaningless.

On the hot verdict every still-PFS-resident file gets a background
placement *eagerly*, ahead of its first read.  This is the paper's
§III-A option (i) staging benefit without its cost: the copies run
concurrently with epoch-1 training, so there is no init delay, but a
file's first read often already finds it cached — which is what lowers
the Lustre-op share on the 200 GiB overflow case below first-fit's.
While observing, admission stays first-fit-like but *bounded*: at most
``max(2 * observe_files, 4 * window)`` distinct files are admitted on
spec, so a workload that never earns a hot verdict pollutes at most
that much tier capacity — first-fit, by contrast, caches everything it
ever touches.  A file whose own reads completed a pass is admitted on
that direct evidence even when the budget is spent.

The limitation is honest: a non-DL workload that bulk-consumes its
dataset exactly once is indistinguishable from training during epoch 1
and is also judged hot.

All placements go through the handler's normal first-fit/caps/health
machinery; when the tiers fill mid-sweep, the sweep simply stops and the
remaining files fall back to exactly the first-fit read path.

The sweep *backs off* instead of racing contended machinery:

* it **pauses while any tier is quarantined** and resumes from
  :meth:`on_tier_readmitted`, re-scanning for files whose in-flight
  copies the outage abandoned (they reverted to PFS-resident) — so a
  mid-epoch tier death costs at most the outage window, not a tail of
  never-re-placed files that first-fit would have cached lazily;
* it **yields to the tenancy arbiter** — when a fair-share arbiter
  referees the tiers, every speculative placement the sweep lands is
  cap headroom the arbiter cannot claw back (no eviction), taken ahead
  of files the job provably reads; admissions then stay lazy, exactly
  the first-fit path the arbiter's caps were tuned against.
"""

from __future__ import annotations

from repro.core.metadata import FileInfo, FileState
from repro.core.policy.base import PlacementPolicy

__all__ = ["EpochPredictorPolicy"]


class EpochPredictorPolicy(PlacementPolicy):
    """Estimate per-file re-read counts from epoch-1 behaviour."""

    name = "predictor"
    tracks_access = True

    def __init__(
        self,
        observe_files: int = 8,
        hot_fraction: float = 0.01,
        full_pass_ratio: float = 0.95,
    ) -> None:
        super().__init__()
        if observe_files < 1:
            raise ValueError("observe_files must be >= 1")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 < full_pass_ratio <= 1.0:
            raise ValueError("full_pass_ratio must be in (0, 1]")
        self.observe_files = observe_files
        self.hot_fraction = hot_fraction
        self.full_pass_ratio = full_pass_ratio
        #: owner -> file -> bytes of the file its reads covered so far
        self._progress: dict[str, dict[str, int]] = {}
        #: owner -> files that completed at least one full sequential pass
        self._full: dict[str, set[str]] = {}
        #: owner -> total bytes covered across all its files
        self._consumed: dict[str, int] = {}
        #: owner -> files admitted on spec while observing (the budget)
        self._on_spec: dict[str, set[str]] = {}
        #: owner -> (window size, namespace bytes), computed on first use
        self._scope: dict[str, tuple[int, int]] = {}
        #: owners judged hot (absent = still observing)
        self._hot: set[str] = set()

    # -- prediction --------------------------------------------------------
    def verdict(self, owner: str = "") -> bool | None:
        """True once ``owner`` was judged hot, None while still observing."""
        return True if owner in self._hot else None

    def predicted_reread_rate(self, owner: str = "") -> float:
        """Fraction of the owner's observed files fully consumed so far."""
        seen = self._progress.get(owner)
        if not seen:
            return 0.0
        return len(self._full.get(owner, ())) / len(seen)

    def _scope_for(self, owner: str) -> tuple[int, int]:
        """(full passes needed for a hot verdict, namespace bytes)."""
        scope = self._scope.get(owner)
        if scope is None:
            assert self.handler is not None
            n = 0
            total = 0
            for info in self.handler.metadata.files():
                if info.owner == owner:
                    n += 1
                    total += info.size
            scope = (max(1, min(self.observe_files, n // 16)), total)
            self._scope[owner] = scope
        return scope

    def _consume(self, info: FileInfo, nbytes: int, covered_full_file: bool) -> None:
        """Advance the file's consumption estimate; may flip the verdict."""
        owner, name = info.owner, info.name
        full = self._full.setdefault(owner, set())
        if name in full:
            return
        seen = self._progress.setdefault(owner, {})
        prev = seen.get(name, 0)
        done = info.size if covered_full_file else min(info.size, prev + nbytes)
        seen[name] = done
        self._consumed[owner] = self._consumed.get(owner, 0) + (done - prev)
        window, namespace_bytes = self._scope_for(owner)
        if done >= info.size * self.full_pass_ratio:
            full.add(name)
        if owner in self._hot:
            return
        if (
            len(full) >= window
            or self._consumed[owner] >= namespace_bytes * self.hot_fraction
        ):
            self._hot.add(owner)
            self._eager_sweep(owner)

    # -- decision hooks ----------------------------------------------------
    def admit(
        self, info: FileInfo, offset: int, nbytes: int, covered_full_file: bool
    ) -> bool:
        owner, name = info.owner, info.name
        self._consume(info, nbytes, covered_full_file)
        if owner in self._hot:
            return True
        if name in self._full.get(owner, ()):
            return True  # read after a completed pass: a proven re-read
        on_spec = self._on_spec.setdefault(owner, set())
        budget = max(2 * self.observe_files, 4 * self._scope_for(owner)[0])
        if name in on_spec or len(on_spec) < budget:
            on_spec.add(name)
            return True
        self.stats.predicted_cold_skips += 1
        return False

    def on_access(self, info: FileInfo, offset: int, nbytes: int) -> None:
        if info.owner not in self._hot:
            self._consume(info, nbytes, covered_full_file=False)

    def on_tier_readmitted(self, level: int) -> None:
        """Re-run the sweep for hot owners after an outage.

        Files whose in-flight copies the outage abandoned reverted to
        PFS-resident, so the re-scan stages them again immediately
        instead of waiting for their next first read.
        """
        for owner in sorted(self._hot):
            self._eager_sweep(owner)

    def _eager_sweep(self, owner: str) -> None:
        """Schedule every still-PFS-resident file of the hot ``owner``.

        Placements run through the normal decision path (first-fit, caps,
        health); the first file that finds no room ends the sweep — the
        rest are handled lazily by their own first reads, exactly like
        first-fit would.  The sweep backs off entirely while a tier is
        quarantined (re-attempted on tier re-admission) and when a
        tenancy arbiter referees the tiers (speculative staging would
        consume cap headroom ahead of the job's proven reads, with no
        eviction to reclaim it).
        """
        handler = self.handler
        assert handler is not None
        if handler.arbiter is not None:
            return
        health = handler.hierarchy.health
        if health is not None and health.any_quarantined:
            return
        for info in handler.metadata.files():
            if info.owner != owner or info.state is not FileState.PFS_ONLY:
                continue
            if not handler.place(
                info, have_content=False, mark_on_fail=False, speculative=True
            ):
                if health is not None and health.any_quarantined:
                    return  # a tier died mid-sweep: resume on readmission
                break
            self.stats.eager_admissions += 1
