"""Pluggable placement policies (strategy layer over the handler).

The registry maps config/CLI names to constructors; ``firstfit`` is the
paper-faithful, bit-identical default.  Adding a policy means writing a
:class:`~repro.core.policy.base.PlacementPolicy` subclass and listing it
here — the property suite (``tests/core/test_policy_properties.py``) and
the FIG-POLICY tournament pick it up automatically.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy.base import PlacementPolicy, PolicyStats
from repro.core.policy.firstfit import FirstFitPolicy
from repro.core.policy.heat import HeatPolicy
from repro.core.policy.predictor import EpochPredictorPolicy

__all__ = [
    "DEFAULT_POLICY",
    "EpochPredictorPolicy",
    "FirstFitPolicy",
    "HeatPolicy",
    "POLICY_NAMES",
    "PlacementPolicy",
    "PolicyStats",
    "make_policy",
]

DEFAULT_POLICY = "firstfit"

#: registered policy names, tournament/CLI order (default first)
POLICY_NAMES = ("firstfit", "heat", "predictor")


def make_policy(
    name: str,
    eviction=None,
    rng: np.random.Generator | None = None,
) -> PlacementPolicy:
    """Factory from the config's policy name.

    ``eviction`` is the legacy ABL-EVICT victim selector, consumed only
    by the first-fit policy; ``rng`` is reserved for stochastic policies
    (none registered today) so the call signature is stable.
    """
    if name == "firstfit":
        return FirstFitPolicy(eviction)
    if name == "heat":
        return HeatPolicy()
    if name == "predictor":
        return EpochPredictorPolicy()
    raise ValueError(f"unknown placement policy {name!r}; expected one of {POLICY_NAMES}")
