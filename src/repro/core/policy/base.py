"""The placement-policy strategy interface.

A :class:`PlacementPolicy` owns the three *decisions* of data placement —
admission, tier choice, victim selection — while the
:class:`~repro.core.placement.PlacementHandler` keeps the *mechanism*:
space reservation, the fair-share arbiter ledger, the background copy
pool and all fault handling.  The split means every policy automatically
respects the safety invariants the handler enforces (tiers never
overcommitted, per-job caps never exceeded, quarantined tiers never
targeted) and differs only in *what* it decides to move where.

Hooks, in the order the handler consults them for a PFS-resident read:

* :meth:`admit` — should this file be considered for placement at all?
* :meth:`choose_tier` — which tier takes it (default: first-fit
  descending, the paper's §III-A rule).
* :meth:`make_room` — no tier had room; may evict residents to create
  some (the paper's answer: never).
* :meth:`after_admit` — the file was scheduled; policies may react
  (e.g. the predictor's eager sweep).
* :meth:`on_access` — every *cached* read, only wired when
  ``tracks_access`` is True so the default policy pays nothing on the
  framework's hottest path.

Policies register themselves in :data:`repro.core.policy.POLICIES`; the
``--policy`` CLI flag and ``MonarchConfig.policy`` select by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (placement imports us)
    from repro.core.metadata import FileInfo
    from repro.core.placement import PlacementHandler

__all__ = ["PlacementPolicy", "PolicyStats"]


@dataclass
class PolicyStats:
    """Per-policy decision counters (published for non-default policies)."""

    #: files moved to a faster tier by a policy decision
    promotions: int = 0
    #: residents evicted to make room for a hotter incoming file
    heat_evictions: int = 0
    #: placements scheduled ahead of the file's first read
    eager_admissions: int = 0
    #: admissions declined because the file is predicted cold
    predicted_cold_skips: int = 0
    #: deferred placements re-attempted after a tier re-admission
    deferred_retries: int = 0

    def counters(self) -> dict[str, int]:
        """Flat, deterministic counter view."""
        return {
            "promotions": self.promotions,
            "heat_evictions": self.heat_evictions,
            "eager_admissions": self.eager_admissions,
            "predicted_cold_skips": self.predicted_cold_skips,
            "deferred_retries": self.deferred_retries,
        }


class PlacementPolicy:
    """Base strategy: admit everything, first-fit descending, no eviction.

    Subclasses override individual hooks; every decision runs *untimed*
    (inline with a read completion or a pool-worker step), so policies
    must not yield and must stay deterministic — no wall clock, no RNG
    draws outside a stream handed in at construction.
    """

    name = "abstract"
    #: middleware calls :meth:`on_access` for cached reads only when True
    tracks_access = False
    #: whether a failed placement marks the file UNPLACEABLE for the rest
    #: of the job (the paper's rule); False keeps it PFS-resident so a
    #: later decision — once heat differentiates — may still place it
    sticky_unplaceable = True

    def __init__(self) -> None:
        self.handler: PlacementHandler | None = None
        self.stats = PolicyStats()

    def bind(self, handler: "PlacementHandler") -> None:
        """Attach the mechanism side; called once by the handler."""
        self.handler = handler

    # -- decision hooks ----------------------------------------------------
    def admit(
        self, info: "FileInfo", offset: int, nbytes: int, covered_full_file: bool
    ) -> bool:
        """Whether a just-read PFS-resident file should be placed.

        ``offset``/``nbytes`` describe the read that triggered the
        question — observation-based policies accumulate them to judge
        how much of the file the workload actually consumes.
        """
        return True

    def choose_tier(self, info: "FileInfo") -> int | None:
        """Target level for ``info`` (None = nothing has room)."""
        assert self.handler is not None
        return self.handler.first_fit(info.size, info.owner)

    def make_room(self, info: "FileInfo") -> int | None:
        """Evict residents so ``info`` fits somewhere; None = refuse."""
        return None

    def after_admit(self, info: "FileInfo") -> None:
        """Called right after ``info``'s background copy was scheduled."""

    def on_access(self, info: "FileInfo", offset: int, nbytes: int) -> None:
        """Called for cached reads when ``tracks_access`` is True."""

    def on_tier_readmitted(self, level: int) -> None:
        """Called after a quarantined tier returns to service.

        Runs once the handler has re-attempted its own deferred
        placements, so a policy that backed off staging during the
        outage (e.g. the predictor's eager sweep) can resume.
        """

    def counters(self) -> dict[str, int]:
        """Counter view merged into telemetry for non-default policies."""
        return self.stats.counters()
