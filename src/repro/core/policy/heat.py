"""Access-heat placement: LFU/LRU scoring, promotion, pressure eviction.

Every read — cached or PFS — bumps a per-file heat score (LFU count,
with last-access time as the LRU tie-break).  The policy differs from
first-fit in three ways, all in the Herodotou & Kakoulli automated
tiered-storage spirit:

* **Eviction under pressure** — when no tier has room for an incoming
  file, residents that are *strictly colder* (by ``evict_margin``) may
  be evicted to make room.  Under the paper's uniform per-epoch access
  every file's heat is equal, so no victim qualifies and the policy
  degenerates to first-fit — replacement churn only appears when access
  is actually skewed, which is exactly the paper's argument for not
  evicting.
* **Promotion up-tier** — on a hierarchy with more than one read-write
  tier (e.g. the RAM-over-SSD variant), a file whose heat reaches
  ``promote_min_heat`` moves to a faster tier when that tier has room —
  or by displacing a strictly-colder resident.
* **No sticky unplaceable** — a file that found no room stays
  PFS-resident instead of being written off, so a later read (once heat
  has differentiated) can still place it by evicting someone colder.

Every decision respects the handler's invariants: quarantined tiers are
never eviction or promotion targets, victims mid-copy are never touched
and the fair-share arbiter is consulted (victim bytes credited) before
any eviction is committed.
"""

from __future__ import annotations

from repro.core.metadata import FileInfo, FileState
from repro.core.policy.base import PlacementPolicy

__all__ = ["HeatPolicy"]


class HeatPolicy(PlacementPolicy):
    """Promote hot files up-tier, evict cold residents under pressure."""

    name = "heat"
    tracks_access = True
    sticky_unplaceable = False

    def __init__(self, evict_margin: float = 1.0, promote_min_heat: float = 2.0) -> None:
        super().__init__()
        if evict_margin < 0:
            raise ValueError("evict_margin must be >= 0")
        if promote_min_heat < 1:
            raise ValueError("promote_min_heat must be >= 1")
        self.evict_margin = evict_margin
        self.promote_min_heat = promote_min_heat
        self._heat: dict[str, float] = {}
        self._last: dict[str, float] = {}

    # -- heat accounting ---------------------------------------------------
    def heat(self, name: str) -> float:
        """Lifetime access count of ``name`` (0 for never-read files)."""
        return self._heat.get(name, 0.0)

    def _touch(self, info: FileInfo) -> float:
        handler = self.handler
        assert handler is not None
        h = self._heat.get(info.name, 0.0) + 1.0
        self._heat[info.name] = h
        self._last[info.name] = handler.sim.now
        return h

    def _coldness_order(self, level: int) -> list[FileInfo]:
        """Evictable residents of ``level``, coldest first (LFU, then LRU)."""
        handler = self.handler
        assert handler is not None
        residents = [
            i for i in handler.cached_on_level(level) if i.pending_level is None
        ]
        residents.sort(
            key=lambda i: (self._heat.get(i.name, 0.0), self._last.get(i.name, 0.0), i.name)
        )
        return residents

    # -- decision hooks ----------------------------------------------------
    def admit(
        self, info: FileInfo, offset: int, nbytes: int, covered_full_file: bool
    ) -> bool:
        self._touch(info)
        return True

    def on_access(self, info: FileInfo, offset: int, nbytes: int) -> None:
        h = self._touch(info)
        if (
            info.state is FileState.CACHED
            and info.level > 0
            and info.pending_level is None
            and h >= self.promote_min_heat
        ):
            self._maybe_promote(info, h)

    def make_room(self, info: FileInfo) -> int | None:
        """Evict strictly-colder residents until ``info`` fits somewhere."""
        handler = self.handler
        assert handler is not None
        health = handler.hierarchy.health
        heat_in = self._heat.get(info.name, 0.0)
        for level, driver in handler.hierarchy.upper_levels():
            if health is not None and not health.is_placeable(level):
                continue
            victims = self._victims_for(level, info.size, heat_in)
            if victims is None:
                continue
            if not self._cap_allows(info, level, driver.quota_bytes, victims):
                continue
            for victim in victims:
                handler.evict(level, victim)
                self.stats.heat_evictions += 1
            if (handler.effective_free(level) or 0) >= info.size:
                return level
        return None

    def _victims_for(
        self, level: int, need_bytes: int, heat_in: float
    ) -> list[FileInfo] | None:
        """Colder-by-margin residents freeing ``need_bytes``; None if short."""
        handler = self.handler
        assert handler is not None
        free = handler.effective_free(level)
        if free is None:
            return None
        victims: list[FileInfo] = []
        for cand in self._coldness_order(level):
            if free >= need_bytes:
                break
            if self._heat.get(cand.name, 0.0) + self.evict_margin > heat_in:
                break  # sorted by heat: nobody further is colder
            victims.append(cand)
            free += cand.size
        if free < need_bytes or not victims:
            return None
        return victims

    def _cap_allows(
        self, info: FileInfo, level: int, quota_bytes: int | None, victims: list[FileInfo]
    ) -> bool:
        """Fair-share check *after* the planned evictions are credited."""
        handler = self.handler
        assert handler is not None
        arbiter = handler.arbiter
        if arbiter is None:
            return True
        cap = arbiter.cap_bytes(info.owner, quota_bytes)
        if cap is None:
            return True
        credited = sum(v.size for v in victims if v.owner == info.owner)
        return arbiter.admitted_bytes(info.owner, level) - credited + info.size <= cap

    # -- promotion ---------------------------------------------------------
    def _maybe_promote(self, info: FileInfo, heat_in: float) -> None:
        handler = self.handler
        assert handler is not None
        health = handler.hierarchy.health
        for target in range(info.level):
            if health is not None and not health.is_placeable(target):
                continue
            driver = handler.hierarchy[target]
            free = handler.effective_free(target)
            if free is not None and free < info.size:
                victims = self._victims_for(target, info.size, heat_in)
                if victims is None:
                    continue
                if not self._cap_allows(info, target, driver.quota_bytes, victims):
                    continue
                for victim in victims:
                    handler.evict(target, victim)
                    self.stats.heat_evictions += 1
            if handler.promote(info, target):
                return
