"""The paper's policy: first-fit descending, admit-on-first-read.

This is the bit-identical default — extracting the strategy interface
must not move a single event, so every hook delegates straight to the
handler code paths that implemented the behaviour before the interface
existed.  The legacy :class:`~repro.core.placement.EvictionPolicy`
objects (the ABL-EVICT ablation's LRU/FIFO/random victim selectors) plug
into :meth:`make_room` unchanged.
"""

from __future__ import annotations

from repro.core.metadata import FileInfo
from repro.core.placement import EvictionPolicy, NoEviction
from repro.core.policy.base import PlacementPolicy

__all__ = ["FirstFitPolicy"]


class FirstFitPolicy(PlacementPolicy):
    """§III-A: highest tier with room; no eviction (unless ablated)."""

    name = "firstfit"

    def __init__(self, eviction: EvictionPolicy | None = None) -> None:
        super().__init__()
        self.eviction = eviction if eviction is not None else NoEviction()

    def make_room(self, info: FileInfo) -> int | None:
        """Ask the legacy eviction policy to make room (ablations only)."""
        if isinstance(self.eviction, NoEviction):
            return None
        handler = self.handler
        assert handler is not None
        for level, _driver in handler.hierarchy.upper_levels():
            victims = self.eviction.select_victims(handler, level, info.size)
            if not victims:
                continue
            for victim in victims:
                handler.evict(level, victim)
            if (handler.effective_free(level) or 0) >= info.size:
                return level
        return None
