"""Storage hierarchy: the ordered tier stack (paper §III-A).

Tiers are configured by the system designer in descending order of
preference (performance, in this paper) and each is wrapped by a
:class:`~repro.core.driver.StorageDriver`.  Every level except the last
starts empty and is read-write; the last level is the read-only PFS that
holds the full dataset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import MonarchConfig
from repro.core.driver import LocalDriver, PFSDriver, StorageDriver
from repro.storage.vfs import MountTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.health import TierHealthTracker

__all__ = ["StorageHierarchy"]


class StorageHierarchy:
    """Ordered stack of storage drivers, level 0 fastest, last = PFS."""

    def __init__(self, drivers: list[StorageDriver]) -> None:
        if len(drivers) < 2:
            raise ValueError("hierarchy needs at least two levels")
        for d in drivers[:-1]:
            if not d.writable:
                raise ValueError("every level above the last must be read-write")
        if drivers[-1].writable:
            raise ValueError("the last level must be the read-only PFS driver")
        self._drivers = list(drivers)
        #: per-tier health tracker, attached by the middleware; placement
        #: honours it (quarantined tiers take no new files) when present
        self.health: "TierHealthTracker | None" = None

    @classmethod
    def from_config(cls, config: MonarchConfig, mounts: MountTable) -> "StorageHierarchy":
        """Build drivers for each configured tier from the mount table."""
        drivers: list[StorageDriver] = []
        specs = config.tiers
        for i, spec in enumerate(specs):
            fs, _rel = mounts.resolve(spec.mount_point)
            if i == len(specs) - 1:
                drivers.append(PFSDriver(fs, spec.mount_point, spec.quota_bytes))
            else:
                drivers.append(LocalDriver(fs, spec.mount_point, spec.quota_bytes))
        return cls(drivers)

    def __len__(self) -> int:
        return len(self._drivers)

    def __getitem__(self, level: int) -> StorageDriver:
        return self._drivers[level]

    @property
    def pfs_level(self) -> int:
        """Index of the last (PFS) level."""
        return len(self._drivers) - 1

    @property
    def pfs(self) -> PFSDriver:
        """The read-only data-source driver."""
        driver = self._drivers[-1]
        assert isinstance(driver, PFSDriver)
        return driver

    def upper_levels(self) -> list[tuple[int, StorageDriver]]:
        """(level, driver) for every read-write tier, fastest first."""
        return list(enumerate(self._drivers[:-1]))

    def first_fit(self, nbytes: int) -> int | None:
        """Paper's placement policy: first level (descending) that fits.

        Returns the level index, or ``None`` when every read-write tier is
        full — at which point the file is served from the PFS for the rest
        of the job (no evictions by default).  Quarantined tiers are
        skipped: a dying device must not receive new placements.
        """
        health = self.health
        for level, driver in self.upper_levels():
            if health is not None and not health.is_placeable(level):
                continue
            if driver.fits(nbytes):
                return level
        return None

    def level_for_mount(self, mount_point: str) -> int | None:
        """Level index whose driver sits on ``mount_point`` (or None)."""
        normalized = mount_point.rstrip("/") or "/"
        for level, driver in enumerate(self._drivers):
            if driver.mount_point == normalized:
                return level
        return None

    def total_upper_free(self) -> int:
        """Free bytes summed over the read-write tiers."""
        total = 0
        for _level, driver in self.upper_levels():
            free = driver.free_bytes()
            if free is not None:
                total += max(0, free)
        return total
