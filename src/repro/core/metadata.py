"""Metadata container: MONARCH's ephemeral virtual namespace (paper §III-A).

Holds one :class:`FileInfo` per dataset file — size, name, and current
location (storage tier) — populated at job start by traversing the dataset
directory on the PFS (one listing plus one ``stat`` per file, each paying
an MDS round trip; this is the 13 s / 52 s initialization phase the paper
reports), updated during the run, and discarded at job end.
"""

from __future__ import annotations

import enum
from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.core.driver import PFSDriver

__all__ = ["FileInfo", "FileState", "MetadataContainer"]


class FileState(enum.Enum):
    """Placement lifecycle of one dataset file."""

    #: only on the PFS; a placement may still be scheduled for it
    PFS_ONLY = "pfs-only"
    #: a background copy to an upper tier is queued or in flight
    COPYING = "copying"
    #: resident on an upper tier; reads are served from there
    CACHED = "cached"
    #: no upper tier had room; permanently served from the PFS this job
    UNPLACEABLE = "unplaceable"


@dataclass
class FileInfo:
    """Virtual-namespace entry for one dataset file."""

    name: str  #: hierarchy-wide logical name (PFS-relative path)
    size: int
    level: int  #: current tier index (last level = the PFS)
    state: FileState = FileState.PFS_ONLY
    #: tier the in-flight copy targets, while state is COPYING
    pending_level: int | None = None
    #: job that owns this entry ("" = the single-tenant global namespace)
    owner: str = ""


class MetadataContainer:
    """The virtual namespace over the whole storage hierarchy.

    In multi-job runs the one container holds every job's entries; each
    entry's ``owner`` partitions it into per-job namespaces (files of
    different jobs never alias — names are full PFS-relative paths under
    per-job dataset directories).
    """

    def __init__(self) -> None:
        self._files: dict[str, FileInfo] = {}
        self.init_time_s: float | None = None
        #: per-owner namespace-build times (multi-job runs)
        self.init_times: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def lookup(self, name: str) -> FileInfo:
        """The :class:`FileInfo` for ``name`` (KeyError if unknown)."""
        return self._files[name]

    def get(self, name: str) -> FileInfo | None:
        """Like :meth:`lookup` but returns ``None`` when unknown."""
        return self._files.get(name)

    def files(self, owner: str | None = None) -> list[FileInfo]:
        """Entries in name order; ``owner`` restricts to one job's namespace."""
        if owner is None:
            return [self._files[k] for k in sorted(self._files)]
        return [
            self._files[k] for k in sorted(self._files)
            if self._files[k].owner == owner
        ]

    def add(self, info: FileInfo) -> None:
        """Insert one entry (startup population)."""
        if info.name in self._files:
            raise ValueError(f"duplicate namespace entry {info.name!r}")
        self._files[info.name] = info

    def cached_count(self) -> int:
        """Files currently resident on an upper tier."""
        return sum(1 for f in self._files.values() if f.state is FileState.CACHED)

    def cached_bytes(self) -> int:
        """Bytes resident on upper tiers."""
        return sum(f.size for f in self._files.values() if f.state is FileState.CACHED)

    def build(
        self,
        pfs_driver: PFSDriver,
        dataset_dir: str,
        pfs_level: int,
        clock_now: Any,
        owner: str = "",
    ) -> Generator[Any, Any, None]:
        """Populate the namespace by traversing ``dataset_dir`` on the PFS.

        One timed ``listdir`` plus one timed ``stat`` per file; the elapsed
        simulated time is recorded as :attr:`init_time_s` (and, keyed by
        ``owner``, in :attr:`init_times`).  Multi-job runs call this once
        per job with that job's dataset directory and owner tag.
        """
        t0 = clock_now()
        entries = yield from pfs_driver.listdir(dataset_dir)
        for path in entries:
            rel = path
            mount = pfs_driver.mount_point
            if rel.startswith(mount):
                rel = rel[len(mount):] or "/"
            meta = yield from pfs_driver.stat(rel)
            self.add(FileInfo(name=rel, size=meta.size, level=pfs_level, owner=owner))
        elapsed = clock_now() - t0
        self.init_time_s = elapsed
        self.init_times[owner] = elapsed

    def clear(self) -> None:
        """Drop the namespace (ephemeral model: removed at job end)."""
        self._files.clear()
        self.init_time_s = None
        self.init_times.clear()
