"""Placement handler: runtime data placement + background copy pool.

Implements the paper's §III-A/§III-B placement machinery:

* **First-fit descending** — a file goes to the highest tier with room;
  when every read-write tier is full the file is marked unplaceable and
  served from the PFS for the rest of the job.  *No evictions* by default:
  under uniform-random per-epoch access, replacement only adds inter-tier
  traffic (the paper's argument; the ABL-EVICT ablation makes it
  measurable by plugging in LRU/FIFO/random policies).
* **Placement during epoch 1** — placement piggybacks on the framework's
  first-epoch reads; nothing is prestaged.
* **Thread pool** — a dedicated pool of background workers copies files
  from the PFS tier upward, so the framework's reads are never delayed by
  placement work.
* **Full-file fetch on partial reads** — when the framework asks for a
  slice of a large record file, the worker streams the *whole* file from
  the PFS (sequentially, which the PFS serves at full aggregate bandwidth)
  so every later slice hits the fast tier.  When the framework already
  read the full content, the PFS re-read is skipped and the content is
  written directly (the paper's "event 3 would not happen").

Space is *reserved* at enqueue time so concurrent copies can never
overcommit a tier.

Multi-job tenancy (see :mod:`repro.core.tenancy`) threads through here in
two places: an optional :class:`~repro.core.tenancy.FairShareArbiter`
vetoes first-fit levels where the owning job is at its admission cap, and
the copy queue drains per-job backlogs round-robin so one job's burst of
scheduled copies cannot monopolise the background pool.  Without an
arbiter (single-tenant runs) both mechanisms reduce to the original
first-fit + FIFO behaviour, event for event.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Generator
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.hierarchy import StorageHierarchy
from repro.core.metadata import FileInfo, FileState, MetadataContainer
from repro.core.tenancy import FairShareArbiter
from repro.simkernel.monitor import TagAccounting
from repro.simkernel.bulk import hold_series
from repro.simkernel.core import Process, Simulator
from repro.simkernel.resources import Store
from repro.storage.base import IOFaultError, NoSpaceError, TierFailedError
from repro.storage.blockmath import jitter_from_normal
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.telemetry.events import NULL_RECORDER

__all__ = [
    "EvictionPolicy",
    "FifoEviction",
    "LruEviction",
    "NoEviction",
    "PlacementHandler",
    "PlacementStats",
    "RandomEviction",
]

#: queue sentinel telling a pool worker to exit
_STOP = object()

#: wake-up token for the worker store; tasks live in the per-job queues
_TASK = object()


@dataclass
class _CopyTask:
    info: FileInfo
    target_level: int
    #: framework already read the full content; skip the PFS re-read
    have_content: bool = False
    #: write-through mode only: bytes of the triggering read to mirror
    increment: int | None = None
    #: private jitter substream, spawned at enqueue (see _enqueue)
    rng: np.random.Generator | None = None
    #: owning job ("" for the single-tenant namespace)
    job: str = ""
    #: policy-driven up-tier move: the level the file is promoted *from*
    #: (None for ordinary PFS-to-tier placements)
    promote_from: int | None = None
    #: staged ahead of any read (eager sweep); drains behind demand copies
    speculative: bool = False


class _JobBacklog:
    """One job's copy backlog, two priority classes.

    Demand copies (triggered by an actual read of the file) always drain
    ahead of speculative ones (staged by a policy sweep before any read),
    so a deep eager burst can never delay the copy a read is waiting on —
    within each class order stays FIFO.  A queued speculative task whose
    file *does* get read is expedited into the demand class at that
    moment, so the drain order converges on the actual access order.
    With no speculative tasks this is exactly the original single FIFO.
    """

    __slots__ = ("demand", "spec")

    def __init__(self) -> None:
        self.demand: deque[_CopyTask] = deque()
        self.spec: deque[_CopyTask] = deque()

    def __len__(self) -> int:
        return len(self.demand) + len(self.spec)

    def push(self, task: _CopyTask) -> None:
        (self.spec if task.speculative else self.demand).append(task)

    def pop(self) -> _CopyTask:
        return self.demand.popleft() if self.demand else self.spec.popleft()


@dataclass
class PlacementStats:
    """Counters the placement handler maintains."""

    scheduled: int = 0
    completed: int = 0
    unplaceable: int = 0
    evictions: int = 0
    bytes_copied: int = 0
    pfs_bytes_fetched: int = 0
    #: transient-fault retries spent by copy tasks
    copy_retries: int = 0
    #: copy tasks that gave up (hard failure, ENOSPC, retry budget spent)
    copy_giveups: int = 0
    #: placements deferred because a quarantined tier blocked first-fit
    deferred: int = 0


class EvictionPolicy:
    """Victim selection when a tier is full (ablation only; paper: none)."""

    name = "abstract"

    def select_victims(
        self,
        handler: "PlacementHandler",
        level: int,
        need_bytes: int,
    ) -> list[FileInfo]:
        """Cached files on ``level`` to evict so ``need_bytes`` fit."""
        raise NotImplementedError

    def _collect(
        self,
        handler: "PlacementHandler",
        level: int,
        need_bytes: int,
        ordered: list[FileInfo],
    ) -> list[FileInfo]:
        victims: list[FileInfo] = []
        free = handler.effective_free(level)
        for info in ordered:
            if free is not None and free >= need_bytes:
                break
            victims.append(info)
            free = (free or 0) + info.size
        if free is not None and free < need_bytes:
            return []  # cannot make room even by evicting everything
        return victims


class NoEviction(EvictionPolicy):
    """The paper's policy: never evict; full tiers stay full."""

    name = "none"

    def select_victims(
        self, handler: "PlacementHandler", level: int, need_bytes: int
    ) -> list[FileInfo]:
        return []


class LruEviction(EvictionPolicy):
    """Evict least-recently-read cached files first."""

    name = "lru"

    def select_victims(
        self, handler: "PlacementHandler", level: int, need_bytes: int
    ) -> list[FileInfo]:
        # Resolve the tier and its type once, not per sort-key call.
        tier = handler.hierarchy[level]
        fs = tier.fs
        if isinstance(fs, LocalFileSystem):
            local_path = tier.local_path
            last_access = fs.last_access_time

            def access_time(info: FileInfo) -> float:
                return last_access(local_path(info.name))
        else:
            def access_time(info: FileInfo) -> float:
                return 0.0

        ordered = sorted(handler.cached_on_level(level), key=access_time)
        return self._collect(handler, level, need_bytes, ordered)


class FifoEviction(EvictionPolicy):
    """Evict in placement order."""

    name = "fifo"

    def select_victims(
        self, handler: "PlacementHandler", level: int, need_bytes: int
    ) -> list[FileInfo]:
        order = handler.placement_order(level)
        ordered = sorted(handler.cached_on_level(level), key=lambda i: order.get(i.name, 0))
        return self._collect(handler, level, need_bytes, ordered)


class RandomEviction(EvictionPolicy):
    """Evict uniformly at random."""

    name = "random"

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def select_victims(
        self, handler: "PlacementHandler", level: int, need_bytes: int
    ) -> list[FileInfo]:
        pool = handler.cached_on_level(level)
        idx = self.rng.permutation(len(pool))
        ordered = [pool[int(i)] for i in idx]
        return self._collect(handler, level, need_bytes, ordered)


def make_eviction_policy(name: str, rng: np.random.Generator | None = None) -> EvictionPolicy:
    """Factory from the config's policy name."""
    if name == "none":
        return NoEviction()
    if name == "lru":
        return LruEviction()
    if name == "fifo":
        return FifoEviction()
    if name == "random":
        if rng is None:
            raise ValueError("random eviction needs an RNG")
        return RandomEviction(rng)
    raise ValueError(f"unknown eviction policy {name!r}")


class PlacementHandler:
    """Selects target tiers and runs the background copy pool."""

    def __init__(
        self,
        sim: Simulator,
        hierarchy: StorageHierarchy,
        metadata: MetadataContainer,
        n_threads: int = 6,
        copy_chunk: int = 1 << 20,
        full_fetch_on_partial_read: bool = True,
        eviction: EvictionPolicy | None = None,
        policy=None,
        rng: np.random.Generator | None = None,
        bulk_io: bool = True,
        copy_retries: int = 3,
        retry_backoff_s: float = 0.01,
        recorder=None,
        arbiter: FairShareArbiter | None = None,
        accounting: TagAccounting | None = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if copy_retries < 0:
            raise ValueError("copy_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        self.sim = sim
        self.hierarchy = hierarchy
        self.metadata = metadata
        self.copy_chunk = copy_chunk
        self.full_fetch = full_fetch_on_partial_read
        self.eviction = eviction or NoEviction()
        if policy is None:
            # Local import: the policy package imports this module for the
            # legacy EvictionPolicy classes.
            from repro.core.policy.firstfit import FirstFitPolicy

            policy = FirstFitPolicy(self.eviction)
        self.policy = policy
        self.policy.bind(self)
        self.bulk_io = bulk_io
        self.copy_retries = copy_retries
        self.retry_backoff_s = retry_backoff_s
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.arbiter = arbiter
        self.accounting = accounting
        self.stats = PlacementStats()
        self._queue = Store(sim, capacity=None, name="placement-queue")
        # Copy-bandwidth fair share: one backlog per job, drained
        # round-robin.  With a single job this is exactly a FIFO.
        self._job_queues: dict[str, _JobBacklog] = {}
        self._rr: deque[str] = deque()
        # Speculative tasks still sitting in a backlog, by file name, so a
        # read of a staged-but-not-started file can expedite its copy.
        self._spec_queued: dict[str, _CopyTask] = {}
        self._reserved: dict[int, int] = {lvl: 0 for lvl, _ in hierarchy.upper_levels()}
        self._placed: dict[int, list[str]] = {lvl: [] for lvl, _ in hierarchy.upper_levels()}
        self._order_counter = 0
        self._order: dict[int, dict[str, int]] = {lvl: {} for lvl, _ in hierarchy.upper_levels()}
        self._workers: list[Process] = [
            sim.spawn(self._worker(), name=f"placement-{i}") for i in range(n_threads)
        ]
        # Per-file write-through progress for the ABL-FETCH variant.
        self._partial_written: dict[str, int] = {}
        # Placements deferred while a quarantined tier blocked first-fit,
        # re-attempted when a tier is re-admitted (insertion-ordered set).
        # Entries are dropped the moment a file is scheduled, abandoned or
        # written off, so a retry can never resurrect a given-up placement.
        self._deferred: dict[str, None] = {}
        # Outstanding background tasks + waiters for drain().
        self._outstanding = 0
        self._idle_waiters: list[Any] = []
        #: called as (name, level, resident) when a file lands on a tier
        #: (copy/promotion completed) or leaves it (eviction); the
        #: distributed peer-cache directory listens here
        self.residency_listener: Callable[[str, int, bool], None] | None = None

    # -- space accounting --------------------------------------------------
    def effective_free(self, level: int) -> int | None:
        """Tier free bytes minus in-flight reservations."""
        free = self.hierarchy[level].free_bytes()
        if free is None:
            return None
        return free - self._reserved[level]

    def first_fit(self, nbytes: int, owner: str = "") -> int | None:
        """§III-A first-fit descending over placeable, in-cap tiers."""
        health = self.hierarchy.health
        arbiter = self.arbiter
        for level, driver in self.hierarchy.upper_levels():
            if health is not None and not health.is_placeable(level):
                continue
            free = self.effective_free(level)
            if free is not None and nbytes > free:
                continue
            if arbiter is not None and not arbiter.may_admit(
                owner, level, nbytes, driver.quota_bytes
            ):
                # The tier has room but this job is at its fair-share cap;
                # the remaining space is other jobs' reserved slice.
                arbiter.record_rejection()
                continue
            return level
        return None

    def cached_on_level(self, level: int) -> list[FileInfo]:
        """Cached FileInfos currently resident on ``level``."""
        out = []
        for name in self._placed[level]:
            info = self.metadata.get(name)
            if info is not None and info.state is FileState.CACHED and info.level == level:
                out.append(info)
        return out

    def placement_order(self, level: int) -> dict[str, int]:
        """name → monotonically-increasing placement sequence number."""
        return self._order[level]

    # -- scheduling ----------------------------------------------------------
    def on_read(
        self, info: FileInfo, offset: int, nbytes: int, covered_full_file: bool
    ) -> None:
        """Hook called by the middleware after it served a PFS read.

        Consults the placement policy (admission, tier choice, victim
        selection) and, on a positive decision, reserves the space and
        enqueues the background work.  Untimed: runs inline with the read
        completion, the copying itself is what takes time.
        """
        if info.state is not FileState.PFS_ONLY:
            # Mid-copy reads still come through the PFS path; surface them
            # to access-tracking policies so consumption estimates have no
            # blind spot while the background copy is in flight.
            if info.state is FileState.COPYING:
                self._expedite(info)
                if self.policy.tracks_access:
                    self.policy.on_access(info, offset, nbytes)
            return
        if not self.full_fetch and not covered_full_file:
            self._write_through(info, offset, nbytes)
            return
        if not self.policy.admit(info, offset, nbytes, covered_full_file):
            return
        if self.place(info, have_content=covered_full_file):
            self.policy.after_admit(info)

    def place(self, info: FileInfo, have_content: bool = False,
              mark_on_fail: bool = True, speculative: bool = False) -> bool:
        """One placement decision for a PFS-resident file.

        Runs the policy's choose-tier/make-room hooks; on success the
        space is reserved, the arbiter charged and the background copy
        enqueued.  ``mark_on_fail=False`` (eager sweeps) leaves a file
        that found no room untouched instead of deferring it or writing
        it off — its own first read will decide again.
        ``speculative=True`` marks the copy as staged ahead of any read:
        it drains behind the job's demand copies (see :class:`_JobBacklog`).
        """
        target = self.policy.choose_tier(info)
        if target is None:
            target = self.policy.make_room(info)
        if target is None:
            if not mark_on_fail:
                return False
            health = self.hierarchy.health
            if health is not None and health.any_quarantined:
                # A quarantined tier may be re-admitted later; keep the
                # file PFS-resident so a post-recovery retry can place it,
                # rather than writing it off for the rest of the job.
                self._deferred[info.name] = None
                self.stats.deferred += 1
                if self.recorder.enabled:
                    self.recorder.emit("copy.deferred", info.name)
                return False
            self._deferred.pop(info.name, None)
            if self.policy.sticky_unplaceable:
                info.state = FileState.UNPLACEABLE
                self.stats.unplaceable += 1
                if self.recorder.enabled:
                    self.recorder.emit("copy.unplaceable", info.name)
            return False
        self._schedule(info, target, have_content, speculative)
        return True

    def _schedule(self, info: FileInfo, target: int, have_content: bool,
                  speculative: bool = False) -> None:
        self._deferred.pop(info.name, None)
        self._reserved[target] += info.size
        if self.arbiter is not None:
            self.arbiter.admit(info.owner, target, info.size)
        info.state = FileState.COPYING
        info.pending_level = target
        self.stats.scheduled += 1
        if self.recorder.enabled:
            self.recorder.emit(
                "copy.scheduled", info.name, level=target, nbytes=info.size,
                **({"job": info.owner} if info.owner else {}),
            )
        self._enqueue(
            _CopyTask(
                info=info,
                target_level=target,
                have_content=have_content,
                job=info.owner,
                speculative=speculative,
            )
        )

    def promote(self, info: FileInfo, target: int) -> bool:
        """Schedule a policy-driven up-tier move of a *cached* file.

        The file keeps serving reads from its current tier while the
        promotion copy runs (``pending_level`` marks it in flight, which
        also shields it from eviction); on completion the old copy is
        dropped and the file's level flips to ``target``.
        """
        if info.state is not FileState.CACHED or info.pending_level is not None:
            return False
        if not 0 <= target < info.level:
            return False
        free = self.effective_free(target)
        if free is not None and free < info.size:
            return False
        if self.arbiter is not None:
            driver = self.hierarchy[target]
            if not self.arbiter.may_admit(
                info.owner, target, info.size, driver.quota_bytes
            ):
                self.arbiter.record_rejection()
                return False
            self.arbiter.admit(info.owner, target, info.size)
        self._reserved[target] += info.size
        info.pending_level = target
        self.stats.scheduled += 1
        if self.recorder.enabled:
            self.recorder.emit(
                "promotion.scheduled", info.name, level=target, nbytes=info.size,
                **({"job": info.owner} if info.owner else {}),
            )
        self._enqueue(
            _CopyTask(
                info=info,
                target_level=target,
                have_content=True,
                job=info.owner,
                promote_from=info.level,
            )
        )
        return True

    def on_tier_readmitted(self, level: int) -> None:
        """Health-tracker hook: a quarantined tier was re-admitted.

        Re-attempts every placement that was deferred while quarantine
        blocked first-fit.  Only files still PFS-resident are retried —
        entries are dropped as soon as a file is scheduled, abandoned or
        written off, so a retry can never resurrect a placement the job
        already gave up on.
        """
        pending = list(self._deferred)
        self._deferred.clear()
        for name in pending:
            info = self.metadata.get(name)
            if info is None or info.state is not FileState.PFS_ONLY:
                continue
            self.policy.stats.deferred_retries += 1
            if self.recorder.enabled:
                self.recorder.emit("copy.deferred_retry", name, level=level)
            self.place(info, have_content=False)
        self.policy.on_tier_readmitted(level)

    def evict(self, level: int, info: FileInfo) -> None:
        """Drop a cached resident back to PFS-only (policy decision)."""
        self.hierarchy[level].remove(info.name)
        if self.arbiter is not None:
            self.arbiter.release(info.owner, level, info.size)
        info.level = self.hierarchy.pfs_level
        info.state = FileState.PFS_ONLY
        info.pending_level = None
        if info.name in self._placed[level]:
            self._placed[level].remove(info.name)
        self.stats.evictions += 1
        if self.recorder.enabled:
            self.recorder.emit("eviction", info.name, level=level, nbytes=info.size)
        if self.residency_listener is not None:
            self.residency_listener(info.name, level, False)

    # -- write-through mode (ABL-FETCH: no full-file fetch) -------------------
    def _write_through(self, info: FileInfo, offset: int, nbytes: int) -> None:
        take = max(0, min(nbytes, info.size - offset))
        if take == 0:
            return
        written = self._partial_written.get(info.name)
        if written is None:
            target = self.first_fit(info.size, info.owner)
            if target is None:
                info.state = FileState.UNPLACEABLE
                self.stats.unplaceable += 1
                return
            self._reserved[target] += info.size
            if self.arbiter is not None:
                self.arbiter.admit(info.owner, target, info.size)
            info.pending_level = target
            self._partial_written[info.name] = 0
            self.stats.scheduled += 1
            if self.recorder.enabled:
                self.recorder.emit(
                    "copy.scheduled", info.name, level=target, nbytes=info.size,
                    write_through=True,
                )
        self._enqueue(
            _CopyTask(
                info=info,
                target_level=info.pending_level,
                have_content=True,
                increment=take,
                job=info.owner,
            )
        )
        # Track the range; completion check happens in the worker.
        self._partial_written[info.name] += take
        if self._partial_written[info.name] >= info.size:
            info.state = FileState.COPYING

    # -- pool workers -----------------------------------------------------------
    def _enqueue(self, task: _CopyTask) -> None:
        # Every task gets a private jitter substream, *spawned* (never
        # drawn) off the handler stream: spawn order — hence every copy's
        # jitter — is identical whether or not bulk I/O is enabled.
        task.rng = self._rng.spawn(1)[0]
        self._outstanding += 1
        # The Store carries wake-up tokens; the tasks themselves sit in
        # per-job backlogs so workers can drain jobs round-robin.  A job
        # enters the rotation when its backlog goes non-empty and leaves
        # it when drained, so with one job the rotation degenerates to
        # the original strict FIFO.
        backlog = self._job_queues.get(task.job)
        if backlog is None:
            backlog = self._job_queues[task.job] = _JobBacklog()
        if not backlog:
            self._rr.append(task.job)
        backlog.push(task)
        if task.speculative:
            self._spec_queued[task.info.name] = task
        self._queue.put(_TASK)

    def _next_task(self) -> _CopyTask:
        job = self._rr.popleft()
        backlog = self._job_queues[job]
        task = backlog.pop()
        if task.speculative:
            self._spec_queued.pop(task.info.name, None)
        if backlog:
            self._rr.append(job)
        return task

    def _expedite(self, info: FileInfo) -> None:
        """Promote a queued speculative copy to demand class on first read.

        The eager sweep stages files in namespace order; the workload
        reads them in its own (shuffled) order.  The moment a staged file
        is actually read, its pending copy stops being a guess — moving
        it ahead of the remaining guesses gives the read the same copy
        turnaround it would have had under lazy (read-triggered)
        placement.  A task already picked up by a worker is untouched.
        """
        task = self._spec_queued.pop(info.name, None)
        if task is None:
            return
        backlog = self._job_queues[task.job]
        backlog.spec.remove(task)
        task.speculative = False
        backlog.demand.append(task)

    def _task_done(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            waiters, self._idle_waiters = self._idle_waiters, []
            for ev in waiters:
                ev.succeed()

    def drain(self) -> Generator[Any, Any, None]:
        """Wait until every queued background task has been processed."""
        while self._outstanding > 0:
            ev = self.sim.event(name="placement-idle")
            self._idle_waiters.append(ev)
            yield ev

    def _worker(self) -> Generator[Any, Any, None]:
        while True:
            token = yield self._queue.get()
            if token is _STOP:
                return
            task = self._next_task()
            t0 = self.sim.now
            try:
                yield from self._run_task(task)
            finally:
                if self.accounting is not None:
                    self.accounting.charge(task.job, seconds=self.sim.now - t0)
                self._task_done()

    def _run_task(self, task: _CopyTask) -> Generator[Any, Any, None]:
        """Execute one copy task with bounded retry and clean give-up.

        Transient faults retry up to ``copy_retries`` times with
        exponential backoff (partial bytes are discarded first, so every
        attempt starts from scratch); a hard tier failure or ENOSPC gives
        up immediately.  Giving up fully unwinds the placement — space
        reservation, metadata state and partial bytes — leaving the file
        PFS-resident.
        """
        info = task.info
        if task.increment is not None:
            # Write-through increments carry no retry budget: the next
            # framework read re-drives progress anyway.
            if info.pending_level != task.target_level:
                return  # placement was abandoned while this increment queued
            try:
                yield from self._copy_increment(task)
            except (IOFaultError, NoSpaceError) as err:
                self._record_copy_fault(task, err)
                self._abandon(task)
            return
        health = self.hierarchy.health
        if self.recorder.enabled:
            self.recorder.emit("copy.started", info.name, level=task.target_level)
        attempt = 0
        while True:
            if health is not None and (
                not health.is_placeable(task.target_level)
                or (task.promote_from is not None and not health.ok(task.promote_from))
            ):
                # Tier went under quarantine while this task queued (for a
                # promotion, either end failing voids the move).
                self._abandon(task)
                return
            try:
                yield from self._copy_full(task)
            except NoSpaceError as err:
                self._record_copy_fault(task, err)
                self._abandon(task)
                return
            except TierFailedError as err:
                self._record_copy_fault(task, err)
                self._abandon(task)
                return
            except IOFaultError as err:
                self._record_copy_fault(task, err)
                self._discard_partial(task)
                if attempt >= self.copy_retries:
                    self._abandon(task)
                    return
                self.stats.copy_retries += 1
                if self.recorder.enabled:
                    self.recorder.emit("copy.retried", info.name, attempt=attempt + 1)
                delay = self.retry_backoff_s * (2 ** attempt)
                if delay > 0.0:
                    ev = self.sim._pooled_timeout(delay)
                    yield ev
                    self.sim._recycle(ev)
                attempt += 1
            else:
                if health is not None and health.dirty:
                    # A completed copy is not a probe: it may have started
                    # before the tier failed, so it never re-admits.
                    health.record_success(task.target_level, readmit=False)
                return

    def _record_copy_fault(self, task: _CopyTask, err: Exception) -> None:
        """Attribute a copy failure to the faulting tier's health record.

        Injected errors carry the faulting mount point; without one, the
        fault is charged to the copy's target tier.  ENOSPC is a capacity
        condition, not a device fault — it never counts against health.
        """
        health = self.hierarchy.health
        if health is None or not isinstance(err, IOFaultError):
            return
        level = None
        mount = getattr(err, "mount", None)
        if mount is not None:
            level = self.hierarchy.level_for_mount(mount)
        if level is None:
            level = task.target_level
        health.record_fault(level)

    def _discard_partial(self, task: _CopyTask) -> None:
        """Drop partially copied bytes so a retry starts from scratch."""
        driver = self.hierarchy[task.target_level]
        if driver.has(task.info.name):
            driver.remove(task.info.name)

    def _abandon(self, task: _CopyTask) -> None:
        """Give up on a placement cleanly.

        Reservation, partial bytes and metadata all return to the
        pre-schedule world: the file stays PFS-resident (a later read may
        place it again once the hierarchy recovers).  An abandoned
        *promotion* keeps the original cached copy authoritative — only
        the in-flight reservation on the faster tier is unwound.  Either
        way any deferred-queue entry for the file is dropped, so a tier
        re-admission cannot re-attempt a placement the job gave up on.
        """
        info = task.info
        level = task.target_level
        self._discard_partial(task)
        self._reserved[level] -= info.size
        if self.arbiter is not None:
            self.arbiter.release(info.owner, level, info.size)
        info.pending_level = None
        self._deferred.pop(info.name, None)
        self.stats.copy_giveups += 1
        if task.promote_from is not None:
            if self.recorder.enabled:
                self.recorder.emit("promotion.gave_up", info.name, level=level)
            return
        info.state = FileState.PFS_ONLY
        self._partial_written.pop(info.name, None)
        if self.recorder.enabled:
            self.recorder.emit("copy.gave_up", info.name, level=level)

    def _copy_full(self, task: _CopyTask) -> Generator[Any, Any, None]:
        """Copy a whole file to its target tier as one chunk train.

        The transfer is planned up front as an alternating read-chunk /
        write-chunk schedule and executed through
        :func:`~repro.simkernel.bulk.hold_series`: while the OSTs and the
        target device channel are idle the whole train occupies them with
        a *single* event, and the moment anything else wants a channel the
        remainder degrades to exact per-chunk execution.  Bookkeeping side
        effects (tier growth, page-cache residency, I/O counters) land
        once at completion in *both* modes, so ``REPRO_DISABLE_BULK_IO=1``
        replays the identical simulation, event for event.
        """
        info = task.info
        driver = self.hierarchy[task.target_level]
        pfs_driver = self.hierarchy.pfs
        local_fs = driver.fs
        pfs_fs = pfs_driver.fs
        fetching = not task.have_content
        size = info.size
        chunk = self.copy_chunk
        aligned = True
        if fetching and isinstance(pfs_fs, ParallelFileSystem):
            stripe = pfs_fs.config.stripe_size
            # Sub-stripe alignment keeps every read leg on a single OST,
            # which is what makes the train linear (one resource per leg).
            aligned = chunk <= stripe and stripe % chunk == 0
        if (
            not isinstance(local_fs, LocalFileSystem)
            or (fetching and not isinstance(pfs_fs, ParallelFileSystem))
            or not aligned
        ):
            yield from self._copy_full_chunked(task)
            return
        if size == 0:
            self._finish(task)
            return
        if not driver.fits(size):
            raise NoSpaceError(f"tier {driver.mount_point}: quota exceeded for {info.name}")
        # One open per side, paid up front (the chunk loop pays the same
        # cost on its first chunk; later chunks hit the handle cache).
        if fetching:
            yield from pfs_driver._handle_for(info.name)
        handle = yield from driver._handle_for(info.name, "a")

        rng = task.rng
        device = local_fs.device
        write_ch = device.channel
        sigma_w = device.profile.jitter_sigma
        jit_w = device.rng is not None and sigma_w > 0.0 and rng is not None
        jit_r = False
        pfs_path = ""
        if fetching:
            sigma_r = pfs_fs.config.jitter_sigma
            jit_r = pfs_fs.rng is not None and sigma_r > 0.0 and rng is not None
            pfs_path = pfs_driver.local_path(info.name)
        n_chunks = -(-size // chunk)
        # Jitters are pre-drawn in chunk order from the task's private
        # substream: the same draws land whichever way the train executes.
        z_read = [rng.normal(0.0, sigma_r) for _ in range(n_chunks)] if jit_r else []
        z_write = [rng.normal(0.0, sigma_w) for _ in range(n_chunks)] if jit_w else []

        # A time-varying interference model without lookahead support
        # cannot be queried at future instants, so read-leg times can only
        # be computed at execution time (per chunk).
        use_bulk = self.bulk_io and (not fetching or pfs_fs.bulk_capable)
        steps: list[tuple[bool, int, int]] = []  # (is_read, chunk index, nbytes)
        schedule: list[tuple[Any, float]] = []
        acc = self.sim.now
        pos = 0
        i = 0
        while pos < size:
            take = min(chunk, size - pos)
            if fetching:
                t_r = 0.0
                if use_bulk:
                    t_r = pfs_fs.base_time(take, False, True, at=acc)
                    if jit_r:
                        t_r *= jitter_from_normal(z_read[i])
                schedule.append((pfs_fs.ost_for(pfs_path, pos), t_r))
                steps.append((True, i, take))
                acc += t_r
            t_w = device.write_time(take)
            if jit_w:
                t_w *= jitter_from_normal(z_write[i])
            schedule.append((write_ch, t_w))
            steps.append((False, i, take))
            acc += t_w
            pos += take
            i += 1

        def chunk_exec(j: int) -> Generator[Any, Any, None]:
            is_read, ci, nbytes = steps[j]
            res = schedule[j][0]
            if is_read:
                t = pfs_fs.base_time(nbytes, False, True)
                if jit_r:
                    t *= jitter_from_normal(z_read[ci])
                yield from res.using(t)
            else:
                yield from res.using(schedule[j][1])

        if use_bulk:
            # Read legs depend on interference at their start instant, so
            # a delayed start invalidates the plan (shiftable only when
            # the train is writes-only).
            yield from hold_series(
                self.sim, schedule, chunk_exec=chunk_exec, shiftable=not fetching
            )
        else:
            for j in range(len(schedule)):
                yield from chunk_exec(j)

        if fetching:
            pfs_fs.stats.record_reads(n_chunks, size)
            self.stats.pfs_bytes_fetched += size
        local_fs.apply_bulk_write(handle, size, n_chunks)
        self._finish(task)

    def _copy_full_chunked(self, task: _CopyTask) -> Generator[Any, Any, None]:
        """Straightforward per-chunk copy for exotic tier combinations."""
        info = task.info
        driver = self.hierarchy[task.target_level]
        pfs = self.hierarchy.pfs
        pos = 0
        while pos < info.size:
            take = min(self.copy_chunk, info.size - pos)
            if not task.have_content:
                yield from pfs.read_sequential(info.name, pos, take)
                self.stats.pfs_bytes_fetched += take
            yield from driver.write(info.name, pos, take)
            pos += take
        self._finish(task)

    def _copy_increment(self, task: _CopyTask) -> Generator[Any, Any, None]:
        """Write-through step: mirror the framework's own chunk to the tier."""
        info = task.info
        if info.state is FileState.CACHED:
            return  # surplus task after an earlier increment completed the file
        driver = self.hierarchy[task.target_level]
        already = driver.fs.file_size(driver.local_path(info.name)) if driver.has(info.name) else 0
        take = min(task.increment or 0, info.size - already)
        if take > 0:
            yield from driver.write(info.name, already, take)
        if already + take >= info.size:
            self._finish(task)

    def _finish(self, task: _CopyTask) -> None:
        info = task.info
        level = task.target_level
        self._reserved[level] -= info.size
        if task.promote_from is not None:
            # The promoted bytes are live on the faster tier: drop the old
            # copy, move the arbiter charge and flip the level.
            src = task.promote_from
            self.hierarchy[src].remove(info.name)
            if self.arbiter is not None:
                self.arbiter.release(info.owner, src, info.size)
            if info.name in self._placed[src]:
                self._placed[src].remove(info.name)
        info.level = level
        info.state = FileState.CACHED
        info.pending_level = None
        self._placed[level].append(info.name)
        self._order[level][info.name] = self._order_counter
        self._order_counter += 1
        self._partial_written.pop(info.name, None)
        self.stats.completed += 1
        self.stats.bytes_copied += info.size
        if task.promote_from is not None:
            self.policy.stats.promotions += 1
        if self.accounting is not None:
            self.accounting.charge(task.job, nbytes=info.size, ops=1)
        if self.recorder.enabled:
            kind = "promotion.completed" if task.promote_from is not None else "copy.completed"
            self.recorder.emit(
                kind, info.name, level=level, nbytes=info.size,
                **({"job": info.owner} if info.owner else {}),
            )
        if self.residency_listener is not None:
            if task.promote_from is not None:
                self.residency_listener(info.name, task.promote_from, False)
            self.residency_listener(info.name, level, True)

    # -- lifecycle -----------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the pool workers (job teardown)."""
        for _ in self._workers:
            self._queue.put(_STOP)

    @property
    def queue_depth(self) -> int:
        """Copy tasks waiting for a worker."""
        return sum(len(q) for q in self._job_queues.values())

    def probe_candidate(self, level: int) -> str | None:
        """A resident of ``level`` suitable as a health-probe target."""
        placed = self._placed[level]
        return placed[0] if placed else None
