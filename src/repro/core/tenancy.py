"""Multi-job tenancy: several trainers sharing one storage hierarchy.

The paper evaluates MONARCH with one training job per node, but frames the
PFS as a *shared* resource whose contention is the problem being solved
(§II).  This module makes sharing a first-class concept on the middleware
side: N concurrent jobs mount the *same* :class:`~repro.core.middleware.
Monarch` hierarchy, each with

* its own **metadata namespace** — every :class:`~repro.core.metadata.
  FileInfo` carries an owner, and a job can only read files it owns
  (:class:`NamespaceViolationError` otherwise),
* a **fair share** of every read-write tier — the shared placement
  handler consults a :class:`FairShareArbiter` before admitting a file,
  so no job can fill a tier before a later-starting job's epoch-1
  warm-up places anything (the cap *reserves* each job's share), and
* its own slice of the **copy bandwidth** — the placement pool drains
  per-job queues round-robin instead of strictly FIFO, so a job with a
  deep backlog cannot monopolise the background copy workers.

A :class:`JobContext` is the per-job handle: it builds the job's
namespace (its own dataset directory), exposes its reader and its
per-job :class:`~repro.core.middleware.MonarchStats`.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.middleware import Monarch, MonarchReader, MonarchStats

__all__ = ["FairShareArbiter", "JobContext", "NamespaceViolationError"]


class NamespaceViolationError(PermissionError):
    """A job tried to access a file owned by another job's namespace."""


class FairShareArbiter:
    """Per-job admission caps over the shared tiers' quotas.

    Each registered job may keep at most ``quota * share_j / sum(shares)``
    bytes admitted (resident + in-flight reservations) on each tier.
    Because no job can exceed its own cap, every other job's share is
    implicitly *reserved*: a job that starts late still finds its slice
    free — the no-starvation guarantee the warm-up epoch needs.  The cost
    is that a job cannot borrow a sibling's unused share; admission caps
    trade peak tier utilisation for isolation.

    Files whose owner is unregistered (the single-tenant ``""`` owner)
    are tracked but never capped, so arbitrated and unarbitrated
    hierarchies behave identically until a second job registers.
    """

    def __init__(self) -> None:
        self._shares: dict[str, float] = {}
        #: job -> level -> admitted bytes (resident + reserved in-flight)
        self._admitted: dict[str, dict[int, int]] = {}
        #: admissions refused because the job was at its cap
        self.cap_rejections: int = 0

    # -- registration ------------------------------------------------------
    def register(self, job_id: str, share: float = 1.0) -> None:
        """Register one job with a relative fair-share weight."""
        if not job_id:
            raise ValueError("job_id must be non-empty")
        if share <= 0:
            raise ValueError("share must be positive")
        if job_id in self._shares:
            raise ValueError(f"job {job_id!r} already registered")
        self._shares[job_id] = share

    @property
    def n_jobs(self) -> int:
        """Number of registered jobs."""
        return len(self._shares)

    def jobs(self) -> list[str]:
        """Registered job ids, in registration order."""
        return list(self._shares)

    # -- the cap -----------------------------------------------------------
    def cap_bytes(self, job_id: str, quota_bytes: int | None) -> int | None:
        """This job's byte cap on a tier of ``quota_bytes`` (None = no cap)."""
        share = self._shares.get(job_id)
        if share is None or quota_bytes is None:
            return None
        total = sum(self._shares.values())
        return int(quota_bytes * share / total)

    def admitted_bytes(self, job_id: str, level: int) -> int:
        """Bytes currently admitted for ``job_id`` on ``level``."""
        return self._admitted.get(job_id, {}).get(level, 0)

    def may_admit(self, job_id: str, level: int, nbytes: int, quota_bytes: int | None) -> bool:
        """Whether admitting ``nbytes`` keeps the job within its cap."""
        cap = self.cap_bytes(job_id, quota_bytes)
        if cap is None:
            return True
        return self.admitted_bytes(job_id, level) + nbytes <= cap

    # -- accounting --------------------------------------------------------
    def admit(self, job_id: str, level: int, nbytes: int) -> None:
        """Account ``nbytes`` admitted for ``job_id`` on ``level``."""
        per_level = self._admitted.setdefault(job_id, {})
        per_level[level] = per_level.get(level, 0) + nbytes

    def release(self, job_id: str, level: int, nbytes: int) -> None:
        """Return ``nbytes`` (abandoned copy or eviction) to the job's cap."""
        per_level = self._admitted.setdefault(job_id, {})
        left = per_level.get(level, 0) - nbytes
        if left < 0:
            raise ValueError(
                f"release of {nbytes} bytes for job {job_id!r} on level {level} "
                f"exceeds its admitted total"
            )
        per_level[level] = left

    def record_rejection(self) -> None:
        """Count one admission refused at the cap (telemetry)."""
        self.cap_rejections += 1

    def counters(self) -> dict[str, int]:
        """Flat, deterministic counter view for metrics publication."""
        out: dict[str, int] = {"tenancy.cap_rejections": self.cap_rejections}
        for job_id in sorted(self._admitted):
            for level in sorted(self._admitted[job_id]):
                out[f"tenancy.admitted.{job_id}.l{level}"] = self._admitted[job_id][level]
        return out


@dataclass
class JobContext:
    """Per-job handle into a shared :class:`Monarch` hierarchy."""

    monarch: "Monarch"
    job_id: str
    dataset_dir: str
    share: float = 1.0

    def initialize(self) -> Generator[Any, Any, None]:
        """Build this job's namespace by traversing its dataset directory.

        Timed, like single-tenant ``Monarch.initialize`` — this is the
        job's own metadata-initialization phase; concurrent jobs traverse
        their directories through the same (contended) MDS.
        """
        yield from self.monarch.initialize_job(self)

    def reader(self) -> "MonarchReader":
        """The framework-side shim bound to this job's namespace."""
        from repro.core.middleware import MonarchReader

        return MonarchReader(self.monarch, job=self.job_id)

    @property
    def stats(self) -> "MonarchStats":
        """Per-job read accounting (where *this job's* reads were served)."""
        return self.monarch.job_stats[self.job_id]

    def files(self):
        """This job's namespace entries, in name order."""
        return self.monarch.metadata.files(owner=self.job_id)
