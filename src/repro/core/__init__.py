"""MONARCH — the paper's contribution: hierarchical storage middleware.

The middleware sits between the DL framework and a hierarchy of storage
backends, and is organized exactly as the paper's Figure 2:

* :mod:`~repro.core.hierarchy` + :mod:`~repro.core.driver` — the *storage
  hierarchy* module: ordered tiers, each wrapped by a storage driver
  exposing its mount path, quota and occupancy; the last tier is the
  read-only PFS holding the full dataset.
* :mod:`~repro.core.placement` — the *placement handler*: first-fit
  descending data placement at runtime, executed by a background thread
  pool that copies files from the PFS tier upward, including the
  full-file-fetch-on-partial-read optimization for large record files.
* :mod:`~repro.core.metadata` — the *metadata container*: an ephemeral
  virtual namespace (name, size, current tier per file) built by
  traversing the dataset directory at startup.
* :mod:`~repro.core.middleware` — the :class:`Monarch` facade tying the
  modules together and exposing the custom ``read(filename, offset,
  size)`` operation, plus :class:`MonarchReader`, the 6-LoC-style
  framework integration.
"""

from repro.core.config import MonarchConfig, TierSpec
from repro.core.driver import LocalDriver, PFSDriver, StorageDriver
from repro.core.hierarchy import StorageHierarchy
from repro.core.metadata import FileInfo, FileState, MetadataContainer
from repro.core.middleware import Monarch, MonarchReader
from repro.core.placement import (
    EvictionPolicy,
    FifoEviction,
    LruEviction,
    NoEviction,
    PlacementHandler,
    RandomEviction,
)
from repro.core.tenancy import FairShareArbiter, JobContext, NamespaceViolationError

__all__ = [
    "EvictionPolicy",
    "FairShareArbiter",
    "FifoEviction",
    "FileInfo",
    "FileState",
    "JobContext",
    "LocalDriver",
    "LruEviction",
    "MetadataContainer",
    "Monarch",
    "MonarchConfig",
    "MonarchReader",
    "NamespaceViolationError",
    "NoEviction",
    "PFSDriver",
    "PlacementHandler",
    "RandomEviction",
    "StorageDriver",
    "StorageHierarchy",
    "TierSpec",
]
