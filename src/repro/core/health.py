"""Per-tier health tracking: quarantine and re-admission.

The middleware treats tier faults the way a production tiering layer
must: a tier that keeps failing is *quarantined* — reads route around it
(ultimately to the PFS, which always holds the data) and the placement
handler stops sending copies to it.  A quarantined tier is probed again
after a cooldown; a successful probe re-admits it.

Rules, all driven by the simulation clock (hence deterministic):

* ``quarantine_threshold`` (K) consecutive faults quarantine a tier.
* The PFS level is never quarantined — it is the data source of last
  resort; its faults only surface after the read-retry budget.
* While quarantined, :meth:`should_attempt` stays False until
  ``probe_interval_s`` has elapsed since the last fault; then one request
  is let through as a probe.  Success re-admits the tier, failure pushes
  the next probe another interval out.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.telemetry.events import NULL_RECORDER

__all__ = ["TierHealthTracker"]


class TierHealthTracker:
    """Consecutive-fault accounting and quarantine state per tier level."""

    def __init__(
        self,
        n_levels: int,
        pfs_level: int,
        clock: Callable[[], float],
        quarantine_threshold: int = 3,
        probe_interval_s: float = 1.0,
        recorder=None,
    ) -> None:
        if n_levels < 1:
            raise ValueError("need at least one level")
        if not 0 <= pfs_level < n_levels:
            raise ValueError(f"pfs_level {pfs_level} outside [0, {n_levels})")
        if quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        if probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        self._clock = clock
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.pfs_level = pfs_level
        self.threshold = quarantine_threshold
        self.probe_interval_s = probe_interval_s
        self._consecutive = [0] * n_levels
        self._quarantined = [False] * n_levels
        self._next_probe = [0.0] * n_levels
        #: called with the level after a re-admission (placement uses it
        #: to retry deferred placements); None = nobody listening
        self.on_readmit: Callable[[int], None] | None = None
        #: called with the level the moment quarantine trips (the
        #: distributed peer cache uses it to declare the node dead)
        self.on_quarantine: Callable[[int], None] | None = None
        #: False until the first fault — lets hot read paths skip all
        #: health bookkeeping while the hierarchy has never misbehaved
        self.dirty = False
        # Lifetime counters (deterministic; surfaced via telemetry).
        self.faults = [0] * n_levels
        self.quarantines = 0
        self.readmissions = 0
        self.probes = 0

    # -- queries ----------------------------------------------------------
    def ok(self, level: int) -> bool:
        """True while ``level`` is not quarantined."""
        return not self._quarantined[level]

    is_placeable = ok  # placement never probes: copies go to healthy tiers only

    def should_attempt(self, level: int) -> bool:
        """Whether a read may try ``level`` now (healthy, or probe due)."""
        if not self._quarantined[level]:
            return True
        if self._clock() >= self._next_probe[level]:
            self.probes += 1
            if self.recorder.enabled:
                self.recorder.emit("tier.probe", f"l{level}")
            return True
        return False

    def quarantined_levels(self) -> list[int]:
        """Currently quarantined level indices, ascending."""
        return [lvl for lvl, q in enumerate(self._quarantined) if q]

    @property
    def any_quarantined(self) -> bool:
        """True while at least one tier sits in quarantine."""
        return any(self._quarantined)

    def consecutive_faults(self, level: int) -> int:
        """Faults since the last success on ``level``."""
        return self._consecutive[level]

    # -- state transitions -------------------------------------------------
    def record_fault(self, level: int) -> None:
        """One failed operation on ``level``; may trip the quarantine."""
        self.dirty = True
        self.faults[level] += 1
        self._consecutive[level] += 1
        if self._quarantined[level]:
            # Failed probe: stay out, try again after another cooldown.
            self._next_probe[level] = self._clock() + self.probe_interval_s
        elif level != self.pfs_level and self._consecutive[level] >= self.threshold:
            self._quarantined[level] = True
            self.quarantines += 1
            self._next_probe[level] = self._clock() + self.probe_interval_s
            if self.recorder.enabled:
                self.recorder.emit(
                    "tier.quarantined", f"l{level}", consecutive=self._consecutive[level]
                )
            if self.on_quarantine is not None:
                self.on_quarantine(level)

    def record_success(self, level: int, readmit: bool = True) -> None:
        """One successful operation on ``level``; re-admits after a probe.

        Pass ``readmit=False`` for operations that are not probes — e.g. a
        background copy that *started* before the tier failed and happened
        to finish after quarantine tripped: its success says nothing about
        the device's health *now*.
        """
        if self._consecutive[level]:
            self._consecutive[level] = 0
        if readmit and self._quarantined[level]:
            self._quarantined[level] = False
            self.readmissions += 1
            if self.recorder.enabled:
                self.recorder.emit("tier.readmitted", f"l{level}")
            if self.on_readmit is not None:
                self.on_readmit(level)

    def counters(self) -> dict[str, int]:
        """Flat counter view for the metrics registry."""
        out = {
            "health.quarantines": self.quarantines,
            "health.readmissions": self.readmissions,
            "health.probes": self.probes,
        }
        for level, count in enumerate(self.faults):
            out[f"health.faults.l{level}"] = count
        return out
