"""The MONARCH facade and its framework integration (paper §III-B, §III-C).

:class:`Monarch` ties the three modules together and exposes the custom
``read(filename, offset, size)`` operation that replaces the framework's
POSIX ``pread``.  The operation flow follows Figure 2 of the paper:

1. look the file up in the metadata container (which tier holds it),
2. forward the read to that tier's storage driver,
3. if the file is still PFS-resident, hand it to the placement handler,
   which reserves space and schedules the background full-file copy,
4. once the copy completes, the file's level is updated and subsequent
   reads are redirected to the faster tier.

:class:`MonarchReader` adapts the facade to the framework's
:class:`~repro.framework.io_layer.DataReader` interface — the analogue of
the paper's 6-line TensorFlow change (a custom file-system driver whose
``pread`` calls ``Monarch.read`` with the *filename* instead of a file
descriptor).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import MonarchConfig
from repro.core.health import TierHealthTracker
from repro.core.hierarchy import StorageHierarchy
from repro.core.metadata import FileState, MetadataContainer
from repro.core.placement import PlacementHandler, make_eviction_policy
from repro.core.policy import make_policy
from repro.core.tenancy import FairShareArbiter, JobContext, NamespaceViolationError
from repro.framework.io_layer import DataReader, OpenFile, continuation_capable
from repro.simkernel.core import PRIORITY_URGENT, Event, SimulationError
from repro.simkernel.monitor import TagAccounting
from repro.storage.base import IOFaultError
from repro.storage.vfs import MountTable
from repro.telemetry.events import NULL_RECORDER
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["Monarch", "MonarchReader", "MonarchStats"]


@dataclass
class MonarchStats:
    """Where reads were served from, per tier level — plus fault accounting."""

    reads_per_level: Counter[int] = field(default_factory=Counter)
    bytes_per_level: Counter[int] = field(default_factory=Counter)
    #: failed operations attributed to each tier level
    tier_faults: Counter[int] = field(default_factory=Counter)
    #: reads whose home tier was faulted/quarantined, served elsewhere
    fallback_reads: int = 0
    #: extra attempts spent in the PFS read-retry loop
    read_retries: int = 0

    def record(self, level: int, nbytes: int) -> None:
        """Account one read served from ``level`` (hot path: one op each)."""
        self.reads_per_level[level] += 1
        self.bytes_per_level[level] += nbytes

    @property
    def total_reads(self) -> int:
        """All reads served through the middleware."""
        return sum(self.reads_per_level.values())

    @property
    def total_faults(self) -> int:
        """All failed operations the middleware observed."""
        return sum(self.tier_faults.values())

    def hit_ratio(self, pfs_level: int) -> float:
        """Fraction of reads served from tiers above the PFS."""
        total = self.total_reads
        if total == 0:
            return 0.0
        return 1.0 - self.reads_per_level.get(pfs_level, 0) / total

    def counters(self) -> dict[str, int]:
        """Flat, deterministic counter view (metrics + test assertions)."""
        out: dict[str, int] = {}
        for level in sorted(self.reads_per_level):
            out[f"monarch.reads.l{level}"] = self.reads_per_level[level]
        for level in sorted(self.bytes_per_level):
            out[f"monarch.bytes.l{level}"] = self.bytes_per_level[level]
        for level in sorted(self.tier_faults):
            out[f"monarch.tier_faults.l{level}"] = self.tier_faults[level]
        out["monarch.fallback_reads"] = self.fallback_reads
        out["monarch.read_retries"] = self.read_retries
        return out


class Monarch:
    """Framework-agnostic hierarchical storage middleware."""

    def __init__(
        self,
        sim: Any,
        config: MonarchConfig,
        mounts: MountTable,
        rng: np.random.Generator | None = None,
        recorder=None,
        accounting: TagAccounting | None = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.mounts = mounts
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.accounting = accounting
        self.hierarchy = StorageHierarchy.from_config(config, mounts)
        self.metadata = MetadataContainer()
        self._health = TierHealthTracker(
            n_levels=len(self.hierarchy),
            pfs_level=self.hierarchy.pfs_level,
            clock=lambda: sim.now,
            quarantine_threshold=config.quarantine_threshold,
            probe_interval_s=config.probe_interval_s,
            recorder=self.recorder,
        )
        # Placement consults the same tracker: quarantined tiers take no
        # new files until a read probe re-admits them.
        self.hierarchy.health = self._health
        policy = make_policy(
            config.policy, eviction=make_eviction_policy(config.eviction, rng), rng=rng
        )
        self.placement = PlacementHandler(
            sim=sim,
            hierarchy=self.hierarchy,
            metadata=self.metadata,
            n_threads=config.placement_threads,
            copy_chunk=config.copy_chunk,
            full_fetch_on_partial_read=config.full_fetch_on_partial_read,
            eviction=make_eviction_policy(config.eviction, rng),
            policy=policy,
            rng=rng,
            bulk_io=config.bulk_io_enabled(),
            copy_retries=config.copy_retries,
            retry_backoff_s=config.retry_backoff_s,
            recorder=self.recorder,
            accounting=accounting,
        )
        # Cached-read access hook: None for policies that don't track
        # access so the hot path pays a single comparison, not a call.
        self._on_access = policy.on_access if policy.tracks_access else None
        # Deferred placements retry as soon as a quarantined tier returns.
        self._health.on_readmit = self.placement.on_tier_readmitted
        self.stats = MonarchStats()
        #: per-job read accounting, keyed by job id (multi-job runs)
        self.job_stats: dict[str, MonarchStats] = {}
        #: fair-share admission caps; created by the first register_job
        self.arbiter: FairShareArbiter | None = None
        self._initialized = False

    @property
    def health(self) -> TierHealthTracker:
        """Per-tier quarantine/re-admission state."""
        return self._health

    # -- lifecycle ---------------------------------------------------------
    def initialize(self) -> Generator[Any, Any, None]:
        """Startup: build the virtual namespace by traversing the dataset.

        Timed — this is the metadata-initialization phase the paper reports
        as ~13 s (100 GiB dataset) and ~52 s (200 GiB dataset).
        """
        if self._initialized:
            raise RuntimeError("Monarch already initialized")
        yield from self.metadata.build(
            self.hierarchy.pfs,
            self.config.dataset_dir,
            self.hierarchy.pfs_level,
            clock_now=lambda: self.sim.now,
        )
        self._initialized = True

    # -- multi-job tenancy -------------------------------------------------
    def register_job(self, job_id: str, dataset_dir: str, share: float = 1.0) -> JobContext:
        """Attach one more concurrent job to this hierarchy.

        The first registration creates the :class:`FairShareArbiter` and
        hands it to the placement handler; from then on every registered
        job's placements are capped at its fair share of each tier's
        quota.  Untimed — the job's own (timed) namespace build happens in
        :meth:`JobContext.initialize`.
        """
        if self.arbiter is None:
            self.arbiter = FairShareArbiter()
            self.placement.arbiter = self.arbiter
        self.arbiter.register(job_id, share)
        self.job_stats[job_id] = MonarchStats()
        return JobContext(monarch=self, job_id=job_id, dataset_dir=dataset_dir, share=share)

    def initialize_job(self, ctx: JobContext) -> Generator[Any, Any, None]:
        """Build one job's namespace (its dataset directory, owner-tagged).

        Timed like single-tenant :meth:`initialize`; concurrent jobs
        traverse their directories through the same contended MDS.  Reads
        are enabled once the first job's namespace is up — each job only
        reads its own files, which exist exactly when *its* build is done.
        """
        if ctx.job_id not in self.job_stats:
            raise RuntimeError(f"job {ctx.job_id!r} not registered")
        yield from self.metadata.build(
            self.hierarchy.pfs,
            ctx.dataset_dir,
            self.hierarchy.pfs_level,
            clock_now=lambda: self.sim.now,
            owner=ctx.job_id,
        )
        self._initialized = True

    def prestage(self) -> Generator[Any, Any, None]:
        """Placement option (i) of §III-A: stage files *before* training.

        Schedules a background copy for every namespace file (first-fit,
        until the tiers fill) and blocks until the pool drains.  The paper
        chose option (ii) — placement during the first epoch — "to prevent
        any delay in the training execution time" while issuing "the same
        number of operations to the PFS backend"; this method exists to
        make that design choice measurable (ABL-TIMING).
        """
        if not self._initialized:
            raise RuntimeError("Monarch.prestage before initialize()")
        for info in self.metadata.files():
            self.placement.on_read(info, 0, 0, covered_full_file=False)
        yield from self.placement.drain()

    def shutdown(self) -> None:
        """Job teardown: stop the pool, drop the ephemeral namespace."""
        self.placement.shutdown()
        for _level, driver in self.hierarchy.upper_levels():
            driver.drop_handles()
        self.hierarchy.pfs.drop_handles()
        self.metadata.clear()
        self._initialized = False

    # -- the custom read operation -------------------------------------------
    def file_size(self, name: str) -> int:
        """Size from the virtual namespace (no storage round trip)."""
        return self.metadata.lookup(name).size

    def read(self, name: str, offset: int, nbytes: int, job: str = "") -> Generator[Any, Any, int]:
        """The middleware's replacement for POSIX ``pread``.

        ``name`` is the file's logical (PFS-relative) path — the paper's
        ``Monarch.read`` takes a filename rather than a descriptor.
        ``job`` identifies the calling job in multi-job runs; reads are
        confined to the caller's own namespace.
        """
        if not self._initialized:
            raise RuntimeError("Monarch.read before initialize()")
        info = self.metadata.lookup(name)
        if info.owner != job:
            raise NamespaceViolationError(
                f"job {job!r} read {name!r} owned by job {info.owner!r}"
            )
        job_stats = self.job_stats[job] if job else None
        # Handle resolution + pread are inlined (rather than calling
        # driver.read) to keep one generator frame off every resume on the
        # framework's hottest path.  Until the first fault is observed the
        # only degradation overhead on this path is the try frame and one
        # attribute check (``health.dirty``).
        health = self._health
        if info.state is FileState.CACHED:
            level = info.level
            if not health.dirty or health.should_attempt(level):
                driver = self.hierarchy[level]
                try:
                    handle = yield from driver._handle_for(name)
                    n = yield from driver.fs.pread(handle, offset, nbytes)
                except IOFaultError:
                    health.record_fault(level)
                    self.stats.tier_faults[level] += 1
                else:
                    if health.dirty:
                        health.record_success(level)
                    self.stats.record(level, n)
                    if job_stats is not None:
                        job_stats.record(level, n)
                    if self._on_access is not None:
                        self._on_access(info, offset, n)
                    return n
            # Home tier faulted or quarantined: route around it.
            n = yield from self._fallback_read(info, offset, nbytes, job_stats)
            if self._on_access is not None:
                self._on_access(info, offset, n)
            return n
        # Still (or permanently) on the PFS: serve from the last tier and
        # let the placement handler decide on a background copy.
        pfs_level = self.hierarchy.pfs_level
        pfs = self.hierarchy.pfs
        if health.dirty:
            yield from self._probe_quarantined()
        try:
            handle = yield from pfs._handle_for(name)
            n = yield from pfs.fs.pread(handle, offset, nbytes)
        except IOFaultError:
            self.stats.tier_faults[pfs_level] += 1
            health.record_fault(pfs_level)
            n = yield from self._pfs_read_retrying(name, offset, nbytes)
        self.stats.record(pfs_level, n)
        if job_stats is not None:
            job_stats.record(pfs_level, n)
        covered_full = offset == 0 and n >= info.size
        self.placement.on_read(info, offset, nbytes, covered_full)
        return n

    def _fallback_read(
        self, info: Any, offset: int, nbytes: int, job_stats: MonarchStats | None = None
    ) -> Generator[Any, Any, int]:
        """Serve a read whose home tier is faulted or quarantined.

        Routes through the next healthy tier that actually holds the
        bytes, ultimately the PFS (which, as the data source, always
        does).  The PFS leg gets the bounded retry budget; intermediate
        tiers fail over immediately.
        """
        health = self._health
        name = info.name
        pfs_level = self.hierarchy.pfs_level
        for level in range(info.level + 1, pfs_level):
            driver = self.hierarchy[level]
            if not health.should_attempt(level) or not driver.has(name):
                continue
            try:
                handle = yield from driver._handle_for(name)
                n = yield from driver.fs.pread(handle, offset, nbytes)
            except IOFaultError:
                health.record_fault(level)
                self.stats.tier_faults[level] += 1
                continue
            health.record_success(level)
            self.stats.record(level, n)
            if job_stats is not None:
                job_stats.record(level, n)
                job_stats.fallback_reads += 1
            self.stats.fallback_reads += 1
            if self.recorder.enabled:
                self.recorder.emit("read.fallback", name, level=level)
            return n
        pfs = self.hierarchy.pfs
        try:
            handle = yield from pfs._handle_for(name)
            n = yield from pfs.fs.pread(handle, offset, nbytes)
        except IOFaultError:
            self.stats.tier_faults[pfs_level] += 1
            health.record_fault(pfs_level)
            n = yield from self._pfs_read_retrying(name, offset, nbytes)
        self.stats.record(pfs_level, n)
        if job_stats is not None:
            job_stats.record(pfs_level, n)
            job_stats.fallback_reads += 1
        self.stats.fallback_reads += 1
        if self.recorder.enabled:
            self.recorder.emit("read.fallback", name, level=pfs_level)
        return n

    def _probe_quarantined(self) -> Generator[Any, Any, None]:
        """Drive due health probes from a degraded-mode PFS read.

        Reads of files cached on a quarantined tier probe it naturally
        through :meth:`TierHealthTracker.should_attempt`, but whether such
        reads happen at all depends on the workload's remaining mix — a
        stretch of purely PFS-resident reads would leave a recovered tier
        un-probed long past its due time.  Probing a known resident from
        the PFS path keeps re-admission latency a property of the probe
        cadence, not of which files the epoch happens to touch.  A failed
        probe is a zero-time injected error; a successful one costs a
        single one-byte read on the recovered device.
        """
        health = self._health
        for level in health.quarantined_levels():
            if not health.should_attempt(level):
                continue
            name = self.placement.probe_candidate(level)
            if name is None:
                continue
            driver = self.hierarchy[level]
            try:
                handle = yield from driver._handle_for(name)
                yield from driver.fs.pread(handle, 0, 1)
            except IOFaultError:
                health.record_fault(level)
                self.stats.tier_faults[level] += 1
            else:
                health.record_success(level)

    def _pfs_read_retrying(self, name: str, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """Retry a last-resort PFS read with exponential backoff.

        Entered after a first attempt already failed.  Backoff holds reuse
        the simulator's pooled timeout events; on exhaustion the last
        fault propagates to the framework — there is nowhere left to read
        from.
        """
        pfs = self.hierarchy.pfs
        pfs_level = self.hierarchy.pfs_level
        backoff = self.config.retry_backoff_s
        last: IOFaultError | None = None
        for attempt in range(self.config.read_retries):
            self.stats.read_retries += 1
            if self.recorder.enabled:
                self.recorder.emit("read.retry", name, attempt=attempt + 1)
            if backoff > 0.0:
                ev = self.sim._pooled_timeout(backoff * (2 ** attempt))
                yield ev
                self.sim._recycle(ev)
            try:
                handle = yield from pfs._handle_for(name)
                n = yield from pfs.fs.pread(handle, offset, nbytes)
            except IOFaultError as err:
                last = err
                self.stats.tier_faults[pfs_level] += 1
                self._health.record_fault(pfs_level)
                continue
            self._health.record_success(pfs_level)
            return n
        if last is None:
            last = IOFaultError(f"PFS read of {name}: no retry budget")
        raise last

    def publish_metrics(self, registry: MetricsRegistry | None = None) -> MetricsRegistry:
        """Surface every middleware counter through the telemetry registry.

        Read/fault/fallback/retry counts from :class:`MonarchStats`, the
        placement handler's copy accounting, and the health tracker's
        quarantine history — one flat namespace, suitable for diffing two
        runs in determinism tests.

        Every value is a *snapshot* of a lifetime total, so publishing is
        set-on-publish: re-publishing into the same registry refreshes the
        values instead of double-counting them.
        """
        reg = registry if registry is not None else MetricsRegistry()
        for name, value in self.stats.counters().items():
            reg.set_counter(name, value)
        ps = self.placement.stats
        for field_name in (
            "scheduled",
            "completed",
            "unplaceable",
            "evictions",
            "bytes_copied",
            "pfs_bytes_fetched",
            "copy_retries",
            "copy_giveups",
            "deferred",
        ):
            reg.set_counter(f"placement.{field_name}", getattr(ps, field_name))
        policy = self.placement.policy
        if policy.name != "firstfit":
            # Only non-default policies publish their counters: the
            # default's RunReports must stay byte-identical to the
            # pre-policy-interface golden fixtures.
            for name, value in sorted(policy.counters().items()):
                reg.set_counter(f"policy.{name}", value)
        for name, value in self._health.counters().items():
            reg.set_counter(name, value)
        if self.arbiter is not None:
            for name, value in self.arbiter.counters().items():
                reg.set_counter(name, value)
        for job_id in sorted(self.job_stats):
            for name, value in self.job_stats[job_id].counters().items():
                reg.set_counter(f"jobs.{job_id}.{name}", value)
        return reg


class _MonarchToken:
    """Per-open state for the fused read path (stored in ``OpenFile.token``).

    Caches the namespace lookup plus, per tier level, the resolved driver
    and its bound continuation entry point, so a steady-state resident
    read pays one dict get and a handful of attribute checks before the
    backend's ``pread_begin``.  ``level`` is the level ``driver``/``pb``
    were resolved for (-1 until the first resident read); it is
    re-validated against ``info.level`` on every read, so promotions and
    evictions re-resolve naturally.
    """

    __slots__ = ("info", "key", "level", "driver", "pb")

    def __init__(self, info: Any, key: str) -> None:
        self.info = info
        self.key = key
        self.level = -1
        self.driver: Any = None
        self.pb: Any = None


class _ReadDone:
    """Pooled completion continuation for the fused resident-read path.

    Carries exactly the bookkeeping ``Monarch.read`` performs when its
    generator resumes at the transfer-completion instant — conditional
    health success, tier stats, the policy access hook — then chains to
    the pipeline's callback in the same dispatch slot.  ``health.dirty``
    is re-read here, not captured at issue, because the generator form
    evaluates it at completion time too (a fault elsewhere mid-flight
    makes this read's success count toward re-admission).
    """

    __slots__ = ("reader", "info", "offset", "level", "n", "cb")

    def __call__(self, ev: Any) -> None:
        reader = self.reader
        m = reader.monarch
        health = m._health
        if health.dirty:
            health.record_success(self.level)
        m.stats.record(self.level, self.n)
        on_access = m._on_access
        if on_access is not None:
            on_access(self.info, self.offset, self.n)
        cb = self.cb
        self.info = None
        self.cb = None
        reader._done_pool.append(self)
        cb(ev)


class _LegacyDrive:
    """Drives one legacy read generator continuation-style.

    The fused pipeline issues every read through ``pread_begin``, but
    only resident fast-tier hits are worth inlining; everything else —
    misses, COPYING reads, quarantine fallback routing, tenancy-enforced
    reads, fault-wrapped mounts — still runs the unmodified generator.
    This object stands in for the worker ``Process``: it resumes the
    generator from event callbacks in exactly the slots
    ``Process._resume`` would (including the immediate-resume fast path
    for already-processed events), so fused and generator modes dispatch
    every timed op and RNG draw identically.  A generator exception is
    delivered to the pipeline as an urgent failed event — the same slot
    offset a dying reader process's fail event would occupy.
    """

    __slots__ = ("reader", "gen", "cb", "take")

    def __init__(self, reader: "MonarchReader") -> None:
        self.reader = reader
        self.gen: Any = None
        self.cb: Any = None
        self.take = 0

    def start(self, gen: Any, take: int, cb: Any) -> None:
        """Run ``gen`` to its first suspension in the caller's slot."""
        self.gen = gen
        self.take = take
        self.cb = cb
        self._advance(gen.send, None, None)

    def _step(self, ev: Any) -> None:
        if ev._exc is not None:
            self._advance(self.gen.throw, ev._exc, ev)
        else:
            self._advance(self.gen.send, ev._value, ev)

    def _advance(self, entry: Any, arg: Any, last: Any) -> None:
        gen = self.gen
        try:
            target = entry(arg)
            # Mirror Process._resume's already-processed fast path: an
            # event that fired in an earlier slot resumes immediately.
            while target._processed:
                last = target
                if target._exc is not None:
                    target = gen.throw(target._exc)
                else:
                    target = gen.send(target._value)
        except StopIteration as stop:
            self._finish(stop.value, last)
            return
        except BaseException as err:  # noqa: BLE001 - routed like a dead proc
            self._fail(err)
            return
        target.add_callback(self._step)

    def _finish(self, value: Any, last: Any) -> None:
        if value != self.take:
            # The protocol promised the transfer size synchronously; the
            # generator returning anything else means records were built
            # from a wrong size — fail loudly rather than diverge.
            self._fail(
                SimulationError(
                    f"legacy read returned {value} bytes; fused protocol "
                    f"promised {self.take}"
                )
            )
            return
        cb = self.cb
        self.gen = None
        self.cb = None
        self.reader._drive_pool.append(self)
        if last is None:
            # Zero-yield completion (no real backend does this): defer one
            # slot — a synchronous cb would run before the caller stored
            # the returned transfer size.
            self.reader.monarch.sim.call_now(cb, None, priority=PRIORITY_URGENT)
            return
        cb(last)

    def _fail(self, err: BaseException) -> None:
        cb = self.cb
        sim = self.reader.monarch.sim
        self.gen = None
        self.cb = None
        self.reader._drive_pool.append(self)
        ev = Event(sim, name="legacy-read-error")
        ev.add_callback(cb)
        ev.fail(err, priority=PRIORITY_URGENT)


class MonarchReader(DataReader):
    """The framework-side shim: DataReader backed by ``Monarch.read``.

    ``job`` binds the reader to one job's namespace in multi-job runs;
    the default empty job is the single-tenant global namespace.

    The reader speaks the fused continuation protocol (``open_begin`` /
    ``pread_begin``), so monarch cells engage the pipeline's fused reader
    FSMs.  Routing is per read: a healthy resident fast-tier hit — the
    steady-state case — is inlined with the middleware bookkeeping folded
    into a pooled completion continuation; every other read replays the
    legacy ``Monarch.read`` generator through :class:`_LegacyDrive`,
    which preserves its slot-for-slot behaviour.
    """

    #: fused opens resolve from the virtual namespace with no timed op
    open_is_sync = True

    def __init__(self, monarch: Monarch, job: str = "") -> None:
        self.monarch = monarch
        self.job = job
        self._done_pool: list[_ReadDone] = []
        self._drive_pool: list[_LegacyDrive] = []

    def open(self, path: str) -> Generator[Any, Any, OpenFile]:
        """Resolve size from the virtual namespace (no PFS open)."""
        name = self._logical_name(path)
        size = self.monarch.file_size(name)
        if False:  # pragma: no cover - keeps this a generator without a timed op
            yield None
        return OpenFile(path=name, size=size, token=None)

    def pread(self, f: OpenFile, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        n = yield from self.monarch.read(f.path, offset, nbytes, self.job)
        return n

    def _logical_name(self, path: str) -> str:
        """Strip the PFS mount point: MONARCH names files PFS-relative."""
        pfs_mount = self.monarch.hierarchy.pfs.mount_point
        if path.startswith(pfs_mount):
            rel = path[len(pfs_mount):]
            return rel or "/"
        return path

    # -- fused (continuation-style) protocol ---------------------------
    def fused_capable(self, paths: list[str]) -> bool:
        """Monarch cells always engage the fused FSMs.

        Capability is unconditional because routing is per *read*, not
        per epoch: a read that can't be inlined (miss, COPYING, faulted
        or quarantined tier, tenancy check, fault-wrapped backend) runs
        the legacy generator through :class:`_LegacyDrive` in the same
        dispatch slots.
        """
        return True

    def fused_miss(self, paths: list[str]) -> str | None:
        """Per-read routing means there is never a capability miss."""
        return None

    def open_begin(self, path: str, cb: Any) -> OpenFile:
        """Fused open: namespace resolution only, no timed op.

        ``cb`` is never scheduled — :attr:`open_is_sync` tells the FSM
        to chain straight into the first read, exactly where the
        zero-yield generator ``open`` would have continued.
        """
        name = self._logical_name(path)
        info = self.monarch.metadata.lookup(name)
        return OpenFile(
            path=name,
            size=info.size,
            token=_MonarchToken(info, "/" + name.lstrip("/")),
        )

    def pread_begin(self, f: OpenFile, offset: int, nbytes: int, cb: Any) -> int:
        """Fused pread: inline the resident fast-tier hit, else replay
        the legacy generator continuation-style.

        The fast path requires a CACHED file on a healthy hierarchy with
        an already-open handle on a continuation-capable backend, in the
        single-tenant namespace — the steady-state shape of every epoch
        past the first.  Everything it skips relative to ``Monarch.read``
        is either statically impossible here (tenancy checks with no
        owner, per-job stats with no job) or folded into the pooled
        :class:`_ReadDone` completion continuation.
        """
        m = self.monarch
        tok: _MonarchToken = f.token
        info = tok.info
        if (
            info.state is FileState.CACHED
            and not m._health.dirty
            and not self.job
            and not info.owner
            and m._initialized
        ):
            level = info.level
            if level != tok.level:
                driver = m.hierarchy[level]
                tok.driver = driver
                tok.level = level
                tok.pb = (
                    driver.fs.pread_begin
                    if continuation_capable(driver.fs)
                    else None
                )
            pb = tok.pb
            if pb is not None:
                handle = tok.driver._handles.get(tok.key)
                if handle is not None:
                    pool = self._done_pool
                    done = pool.pop() if pool else _ReadDone()
                    done.reader = self
                    done.info = info
                    done.offset = offset
                    done.level = level
                    done.cb = cb
                    # The backend never invokes ``done`` synchronously
                    # (protocol guarantee), so setting ``n`` after the
                    # call is race-free.
                    n = pb(handle, offset, nbytes, done)
                    done.n = n
                    return n
        return self._legacy_begin(
            m.read(info.name, offset, nbytes, self.job), info, offset, nbytes, cb
        )

    def _legacy_begin(
        self, gen: Any, info: Any, offset: int, nbytes: int, cb: Any
    ) -> int:
        """Replay a legacy read generator under the fused protocol."""
        take = info.size - offset
        if take > nbytes:
            take = nbytes
        elif take < 0:
            take = 0
        pool = self._drive_pool
        drive = pool.pop() if pool else _LegacyDrive(self)
        drive.start(gen, take, cb)
        return take

    def pread_begin_bound(self, f: OpenFile) -> tuple[Any, OpenFile]:
        """Routing is per read, so the bound form is ``pread_begin``."""
        return self.pread_begin, f
