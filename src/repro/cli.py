"""Command-line interface: ``python -m repro.cli <subcommand>``.

Subcommands:

* ``run`` — one seeded single-node experiment (any setup × model ×
  dataset), printing per-epoch times and I/O counters in paper units.
* ``report`` — one seeded run with full telemetry, exporting the
  deterministic :class:`~repro.telemetry.runreport.RunReport` JSON.
* ``diff`` — structural comparison of two exported RunReport JSONs.
* ``multi`` — N concurrent jobs sharing one hierarchy (FIG-MULTI),
  with the serial baseline alongside.
* ``figures`` — regenerate a paper artifact (delegates to
  :mod:`repro.experiments.figures`).
* ``cache`` — inspect or clear the content-keyed run cache.
* ``dist`` — one distributed run (§VI future work).
* ``torch`` — one PyTorch-style loose-file run (§VI portability).

Grid-running subcommands accept ``--jobs N`` (process-pool fan-out of
independent runs; results are byte-identical to serial) and
``--no-cache`` (disable reuse of previously computed runs).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from fractions import Fraction

from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.executor import GridExecutionError
from repro.telemetry.report import format_table

__all__ = ["main"]

DATASETS = {"100g": IMAGENET_100G, "200g": IMAGENET_200G}


def _fraction(raw: str) -> float:
    return float(Fraction(raw))


def _positive_int(raw: str) -> int:
    """argparse type for ``--jobs``: a strictly positive integer."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {raw!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (>= 1), got {value}"
        )
    return value


def _cache_arg(args: argparse.Namespace):
    """Map the ``--no-cache`` flag onto the executor's ``cache=`` value."""
    return None if args.no_cache else True


def _policy_overrides(args: argparse.Namespace) -> dict | None:
    """``--policy`` as monarch overrides; the default maps to None so the
    run-cache keys of pre-policy runs stay valid."""
    if args.policy != "firstfit":
        return {"policy": args.policy}
    return None


def _calib(dataset_key: str, busy: bool | None):
    """Pick the interference regime: the paper's 200 GiB runs were busier."""
    use_busy = busy if busy is not None else dataset_key == "200g"
    return DEFAULT_CALIBRATION.busy() if use_busy else DEFAULT_CALIBRATION


def _serving_args(args: argparse.Namespace):
    """``--workload``/``--trace`` → the (workload, trace) run_once kwargs."""
    workload = trace = None
    if getattr(args, "workload", None):
        from repro.workload.spec import WORKLOADS

        workload = WORKLOADS[args.workload]
    if getattr(args, "trace", None):
        from repro.workload.trace import Trace

        trace = Trace.load(args.trace)
    return workload, trace


def _print_serve(rec, args: argparse.Namespace) -> None:
    """Steady-state summary table for a ServeRunRecord."""
    rows = [
        (i + 1, str(done), f"{hr:.3f}")
        for i, (done, hr) in enumerate(
            zip(rec.window_completed, rec.window_hit_rates))
    ]
    print(format_table(
        ["window", "done", "hit rate"],
        rows,
        title=f"serve {args.setup} / {rec.workload} / {args.dataset} "
              f"(scale {args.scale:g}, seed {args.seed})",
    ))
    print(f"completed {rec.completed}/{rec.n_requests} in {rec.duration_s:.1f} s"
          + (f", init {rec.init_time_s:.1f} s" if rec.init_time_s else ""))
    print(f"hit rate {rec.hit_rate:.3f} (warm {rec.warm_hit_rate:.3f})")
    print(f"latency p50/p99/p999: {rec.p50_ms:.2f}/{rec.p99_ms:.2f}/"
          f"{rec.p999_ms:.2f} ms  warm: {rec.warm_p50_ms:.2f}/"
          f"{rec.warm_p99_ms:.2f}/{rec.warm_p999_ms:.2f} ms")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_once

    workload, trace = _serving_args(args)
    rec = run_once(
        args.setup, args.model, DATASETS[args.dataset],
        calib=_calib(args.dataset, args.busy),
        scale=args.scale, seed=args.seed, epochs=args.epochs,
        monarch_overrides=_policy_overrides(args),
        workload=workload, trace=trace,
    )
    if workload is not None or trace is not None:
        _print_serve(rec, args)
        return 0
    rows = [
        (i + 1, f"{t:.0f}", f"{c * 100:.0f}%", f"{g * 100:.0f}%",
         f"{o / 1e3:.0f}k")
        for i, (t, c, g, o) in enumerate(zip(
            rec.epoch_times_s, rec.cpu_utilization, rec.gpu_utilization,
            rec.pfs_ops_per_epoch))
    ]
    print(format_table(
        ["epoch", "time (s)", "cpu", "gpu", "PFS ops"],
        rows,
        title=f"{args.setup} / {args.model} / {args.dataset} "
              f"(scale {args.scale:g}, seed {args.seed})",
    ))
    print(f"total {rec.total_time_s:.0f} s"
          + (f", init {rec.init_time_s:.0f} s" if rec.init_time_s else "")
          + f", memory ~{rec.memory_gib:.1f} GiB")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_once
    from repro.telemetry.runreport import RunReport, render_report

    workload, trace = _serving_args(args)
    rec = run_once(
        args.setup, args.model, DATASETS[args.dataset],
        calib=_calib(args.dataset, args.busy),
        scale=args.scale, seed=args.seed, epochs=args.epochs,
        monarch_overrides=_policy_overrides(args),
        report=True,
        workload=workload, trace=trace,
    )
    assert rec.report is not None
    rep = RunReport.from_dict(rec.report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rep.to_json())
        print(f"wrote {args.out}")
        print(render_report(rep))
    else:
        print(rep.to_json(), end="")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.telemetry.runreport import RunReport, diff_reports, render_diff

    reports = []
    for path in (args.a, args.b):
        try:
            with open(path) as fh:
                reports.append(RunReport.from_json(fh.read()))
        except OSError as err:
            print(f"error: cannot read report {path!r}: {err}", file=sys.stderr)
            return 2
        except (ValueError, TypeError, KeyError, AttributeError) as err:
            print(f"error: {path!r} is not a RunReport JSON: {err}", file=sys.stderr)
            return 2
    diffs = diff_reports(reports[0], reports[1])
    print(render_diff(diffs))
    return 0 if not diffs else 1


def _cmd_multi(args: argparse.Namespace) -> int:
    from repro.experiments.figures import fig_multi, render_multi
    from repro.telemetry.runreport import RunReport

    result = fig_multi(
        scale=args.scale, seed=args.seed, n_jobs=args.n_jobs,
        report=args.out is not None,
        jobs=args.jobs, cache=_cache_arg(args),
        policy=args.policy,
    )
    print(render_multi(
        result, f"FIG-MULTI: {args.n_jobs} concurrent jobs (scale {args.scale:g}, "
                f"seed {args.seed})"))
    if args.out:
        concurrent = result["concurrent"]
        assert concurrent.report is not None
        with open(args.out, "w") as fh:
            fh.write(RunReport.from_dict(concurrent.report).to_json())
        print(f"wrote {args.out}")
    return 0


def _cmd_dist(args: argparse.Namespace) -> int:
    from repro.experiments.dist_scenarios import run_distributed_once

    rec = run_distributed_once(
        args.setup, args.model, DATASETS[args.dataset],
        n_nodes=args.nodes, policy=args.partition,
        calib=_calib(args.dataset, args.busy),
        scale=args.scale, seed=args.seed, epochs=args.epochs,
        placement_policy=args.policy,
    )
    peer = rec.peer_hits_per_epoch or [0] * len(rec.epoch_times_s)
    rows = [
        (i + 1, f"{t:.0f}", f"{h:.0%}", f"{o / 1e3:.0f}k", p)
        for i, (t, h, o, p) in enumerate(zip(
            rec.epoch_times_s, rec.tier_hit_ratio_per_epoch,
            rec.pfs_ops_per_epoch, peer))
    ]
    print(format_table(
        ["epoch", "time (s)", "tier hits", "PFS ops", "peer hits"],
        rows,
        title=f"distributed {args.setup} / {args.model} / {args.dataset} "
              f"N={args.nodes} partition={args.partition}",
    ))
    print(f"total {rec.total_time_s:.0f} s"
          + (f", init {rec.init_time_s:.0f} s" if rec.init_time_s else ""))
    return 0


def _cmd_torch(args: argparse.Namespace) -> int:
    from repro.experiments.torch_scenarios import run_torch_once

    rec = run_torch_once(
        args.setup, args.model, DATASETS[args.dataset],
        calib=_calib(args.dataset, args.busy),
        scale=args.scale, seed=args.seed, epochs=args.epochs,
        policy=args.policy,
    )
    rows = [
        (i + 1, f"{t:.0f}", f"{o / 1e3:.0f}k")
        for i, (t, o) in enumerate(zip(rec.epoch_times_s, rec.pfs_ops_per_epoch))
    ]
    print(format_table(
        ["epoch", "time (s)", "PFS ops"],
        rows,
        title=f"torch-style {args.setup} / {args.model} / {args.dataset}",
    ))
    print(f"total {rec.total_time_s:.0f} s"
          + (f", init {rec.init_time_s:.0f} s" if rec.init_time_s else ""))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    argv = [args.artifact, "--scale", str(args.scale),
            "--runs", str(args.runs), "--seed", str(args.seed),
            "--jobs", str(args.jobs), "--n-jobs", str(args.n_jobs)]
    if args.no_cache:
        argv.append("--no-cache")
    return figures.main(argv)


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.executor import RunCache, default_cache_dir

    root = args.dir if args.dir else default_cache_dir()
    cache = RunCache(root)
    if args.action == "stats":
        entries = cache.entries()
        print(f"run cache: {cache.root}")
        print(f"  entries: {len(entries)}")
        print(f"  bytes:   {cache.total_bytes()}")
        return 0
    assert args.action == "clear"
    removed = cache.clear()
    print(f"removed {removed} cached runs from {cache.root}")
    return 0


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--model", default="lenet",
                   choices=["lenet", "alexnet", "resnet50"])
    p.add_argument("--dataset", default="100g", choices=sorted(DATASETS))
    p.add_argument("--scale", type=_fraction, default=1 / 256,
                   help="simulation scale, e.g. 1/128")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--epochs", type=int, default=None)
    p.add_argument("--busy", action="store_true", default=None,
                   help="force the heavy-contention regime")
    p.add_argument("--policy", default="firstfit",
                   choices=["firstfit", "heat", "predictor"],
                   help="placement policy for monarch setups "
                        "(default: paper-faithful first-fit)")


def _add_serving(p: argparse.ArgumentParser) -> None:
    from repro.workload.spec import WORKLOADS

    p.add_argument("--workload", default=None, choices=sorted(WORKLOADS),
                   help="replay a generated serving trace instead of "
                        "epoch training")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="replay a trace file (JSONL, see repro.workload.trace)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MONARCH reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="one single-node experiment")
    p_run.add_argument("setup", choices=["vanilla-lustre", "vanilla-local",
                                         "vanilla-caching", "monarch"])
    _add_common(p_run)
    _add_serving(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_rep = sub.add_parser("report", help="one run with full telemetry; "
                                          "export the RunReport JSON")
    p_rep.add_argument("setup", choices=["vanilla-lustre", "vanilla-local",
                                         "vanilla-caching", "monarch"])
    p_rep.add_argument("--out", default=None,
                       help="write the JSON here (default: stdout)")
    _add_common(p_rep)
    _add_serving(p_rep)
    p_rep.set_defaults(fn=_cmd_report)

    p_diff = sub.add_parser("diff", help="compare two RunReport JSON files")
    p_diff.add_argument("a", help="first RunReport JSON file")
    p_diff.add_argument("b", help="second RunReport JSON file")
    p_diff.set_defaults(fn=_cmd_diff)

    p_multi = sub.add_parser(
        "multi", help="N concurrent jobs on one hierarchy vs serial (FIG-MULTI)"
    )
    p_multi.add_argument("--n-jobs", type=int, default=2,
                         help="concurrent job count (2-4)")
    p_multi.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes for the serial baselines")
    p_multi.add_argument("--no-cache", action="store_true",
                         help="disable the content-keyed run cache")
    p_multi.add_argument("--scale", type=_fraction, default=1 / 256,
                         help="simulation scale, e.g. 1/128")
    p_multi.add_argument("--seed", type=int, default=0)
    p_multi.add_argument("--out", default=None,
                         help="also write the aggregate RunReport JSON here")
    p_multi.add_argument("--policy", default="firstfit",
                         choices=["firstfit", "heat", "predictor"],
                         help="placement policy for the shared hierarchy")
    p_multi.set_defaults(fn=_cmd_multi)

    p_dist = sub.add_parser("dist", help="one distributed run (§VI)")
    p_dist.add_argument("setup", choices=["vanilla-lustre", "monarch",
                                          "monarch-p2p"])
    p_dist.add_argument("--nodes", type=int, default=2)
    p_dist.add_argument("--partition", default="static",
                        choices=["static", "reshuffle"],
                        help="shard partition policy across nodes")
    _add_common(p_dist)
    p_dist.set_defaults(fn=_cmd_dist)

    p_torch = sub.add_parser("torch", help="one loose-file run (§VI)")
    p_torch.add_argument("setup", choices=["vanilla-lustre", "monarch"])
    _add_common(p_torch)
    p_torch.set_defaults(fn=_cmd_torch)

    p_fig = sub.add_parser("figures", help="regenerate a paper artifact")
    p_fig.add_argument("artifact",
                       choices=["fig1", "fig3", "fig4", "multi", "policy",
                                "dist-cache", "serve", "io", "meta", "usage",
                                "all"])
    p_fig.add_argument("--scale", type=_fraction, default=1 / 128)
    p_fig.add_argument("--runs", type=int, default=3)
    p_fig.add_argument("--seed", type=int, default=0)
    p_fig.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes for the run grid")
    p_fig.add_argument("--n-jobs", type=int, default=2,
                       help="concurrent job count for the multi artifact")
    p_fig.add_argument("--no-cache", action="store_true",
                       help="disable the content-keyed run cache")
    p_fig.set_defaults(fn=_cmd_figures)

    p_cache = sub.add_parser("cache", help="inspect or clear the run cache")
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument("--dir", default=None,
                         help="cache directory (default: REPRO_RUN_CACHE or "
                              "~/.cache/repro-monarch/runs)")
    p_cache.set_defaults(fn=_cmd_cache)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except GridExecutionError as err:
        # A worker failed (or the pool broke): surface the failing spec
        # and the traceback on stderr instead of an unhandled crash.
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
