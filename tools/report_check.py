#!/usr/bin/env python
"""Determinism gate for the RunReport observability layer.

Runs one tiny seeded MONARCH scenario twice and fails unless the two
exported reports are byte-identical JSON.  This is the CI-facing contract
behind ``repro report``: same seed ⇒ same report, down to the last byte —
every float in the payload must come from the deterministic simulation,
never from wall clocks, dict ordering, or accumulation-order drift.

Usage::

    python tools/report_check.py [--scale 1/4096] [--seed 7] [--setup monarch]

Exits 0 when the reports match, 1 (with the first divergences printed)
when they do not.
"""

from __future__ import annotations

import argparse
import os
import sys
from fractions import Fraction

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.data.imagenet import IMAGENET_100G  # noqa: E402
from repro.experiments.runner import run_once  # noqa: E402
from repro.telemetry.runreport import (  # noqa: E402
    RunReport,
    diff_reports,
    render_diff,
)


def one_report(setup: str, scale: float, seed: int) -> RunReport:
    rec = run_once(setup, "lenet", IMAGENET_100G, scale=scale, seed=seed, report=True)
    assert rec.report is not None
    return RunReport.from_dict(rec.report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="RunReport determinism gate")
    parser.add_argument("--setup", default="monarch")
    parser.add_argument("--scale", type=lambda s: float(Fraction(s)), default=1 / 4096)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    a = one_report(args.setup, args.scale, args.seed)
    b = one_report(args.setup, args.scale, args.seed)
    ja, jb = a.to_json(), b.to_json()
    if ja == jb:
        print(
            f"report-check OK: {args.setup} scale={args.scale:g} seed={args.seed} "
            f"-> {len(ja)} bytes, byte-identical across runs"
        )
        return 0
    print("report-check FAILED: same-seed runs diverged", file=sys.stderr)
    print(render_diff(diff_reports(a, b)), file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
