"""Profile the kernel probe cell under cProfile.

Runs the same contended cell as ``benchmarks/test_kernel_speed.py``
(vanilla-lustre / resnet50 at the bench scale), scenario build excluded,
and prints the top cumulative-time functions — the first stop when
events/sec regresses.  Usage::

    make profile-kernel            # scale 1/128, top 20
    python tools/profile_kernel.py --scale 1/64 --top 30
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.imagenet import IMAGENET_100G  # noqa: E402
from repro.experiments.calibration import DEFAULT_CALIBRATION  # noqa: E402
from repro.experiments.scenarios import build_run  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="1/128",
                        help="simulation scale (fraction, default 1/128)")
    parser.add_argument("--top", type=int, default=20,
                        help="number of functions to print (default 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key (default cumulative)")
    args = parser.parse_args(argv)
    scale = float(Fraction(args.scale))

    handle = build_run(
        "vanilla-lustre", "resnet50", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=scale, seed=0,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    handle.execute()
    profiler.disable()

    print(f"probe: vanilla-lustre/resnet50 scale={args.scale} "
          f"({handle.sim.events_processed} dispatch slots)")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
