"""Profile a kernel probe cell under cProfile.

Runs the same contended cells as ``benchmarks/test_kernel_speed.py``
(scenario build excluded) and prints the top cumulative-time functions —
the first stop when events/sec regresses.  ``--setup`` picks the cell:
``vanilla-lustre`` (the historical probe), ``monarch`` (the middleware
fused-read path that dominates figure grids) or ``monarch-p2p`` (the
peer-cache cluster cell, run distributed on 3 nodes).  Usage::

    make profile-kernel                          # vanilla, 1/128, top 20
    python tools/profile_kernel.py --setup monarch --scale 1/64 --top 30
    python tools/profile_kernel.py --setup monarch-p2p
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from fractions import Fraction
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.imagenet import IMAGENET_100G  # noqa: E402
from repro.experiments.calibration import DEFAULT_CALIBRATION  # noqa: E402
from repro.experiments.scenarios import build_run  # noqa: E402

#: nodes for the distributed (monarch-p2p) probe
P2P_NODES = 3


def _single_probe(setup: str, scale: float):
    """(execute thunk, sim) for a single-node cell."""
    handle = build_run(
        setup, "resnet50", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=scale, seed=0,
    )
    return handle.execute, handle.sim


def _p2p_probe(scale: float):
    """(execute thunk, sim) for the peer-cache cluster cell."""
    from repro.distributed.cluster import ClusterSpec, build_cluster
    from repro.distributed.trainer import DistributedTrainer
    from repro.framework.models import MODELS

    cluster = build_cluster(
        setup="monarch-p2p",
        dataset=IMAGENET_100G,
        calib=DEFAULT_CALIBRATION,
        cluster_spec=ClusterSpec(n_nodes=P2P_NODES),
        scale=scale,
        seed=0,
        record_events=False,
    )
    assert cluster.env is not None
    trainer = DistributedTrainer(
        cluster=cluster,
        model=MODELS["resnet50"],
        pipeline_config=cluster.env.pipeline,
        partition_policy="reshuffle",
        epochs=DEFAULT_CALIBRATION.epochs,
        seed=0,
    )

    def execute():
        proc = cluster.sim.spawn(trainer.run(), name="dist-train")
        return cluster.sim.run(proc)

    return execute, cluster.sim


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--setup", default="vanilla-lustre",
                        choices=("vanilla-lustre", "monarch", "monarch-p2p"),
                        help="probe cell to profile (default vanilla-lustre)")
    parser.add_argument("--scale", default="1/128",
                        help="simulation scale (fraction, default 1/128)")
    parser.add_argument("--top", type=int, default=20,
                        help="number of functions to print (default 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key (default cumulative)")
    args = parser.parse_args(argv)
    scale = float(Fraction(args.scale))

    if args.setup == "monarch-p2p":
        execute, sim = _p2p_probe(scale)
        label = f"monarch-p2p/resnet50 x{P2P_NODES}"
    else:
        execute, sim = _single_probe(args.setup, scale)
        label = f"{args.setup}/resnet50"
    profiler = cProfile.Profile()
    profiler.enable()
    execute()
    profiler.disable()

    print(f"probe: {label} scale={args.scale} "
          f"({sim.events_processed} dispatch slots)")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
