#!/usr/bin/env python
"""Line-coverage gate for ``src/repro`` with no third-party dependencies.

Runs the test suite in-process under a line tracer and fails when total
line coverage drops below the floor recorded in the Makefile.  Uses
coverage.py when it is installed; otherwise falls back to a stdlib
``sys.settrace`` tracer, so the gate works in hermetic environments where
``pip install`` is unavailable.

Executable lines are derived from the compiled code objects'
``co_lines()`` tables — the same ground truth the tracer reports against —
so the two modes agree on the denominator.

Usage::

    python tools/coverage_gate.py --fail-under 80 [pytest args...]

Default pytest args: ``tests -q`` (the tier-1 suite).
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from collections import defaultdict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")

#: Subsystems the gate must always actually measure.  If one of these
#: packages disappears from the source tree — or the measured run never
#: executes a line of it — the total percentage silently stops covering
#: what the floor assumes, so the gate fails loudly instead.
REQUIRED_PACKAGES = ("core/policy", "distributed", "workload")


def iter_source_files(root: str) -> list[str]:
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for fn in sorted(filenames):
            if fn.endswith(".py"):
                out.append(os.path.join(dirpath, fn))
    return sorted(out)


def executable_lines(path: str) -> set[int]:
    """Line numbers with executable bytecode, from the compiled module."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    lines: set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # The implicit module epilogue (`return None` at line 0/1 of the
    # module object) is not a meaningful target; co_lines already maps it
    # to real lines, so nothing to scrub.
    return lines


class LineTracer:
    """Minimal settrace hook: records executed lines under one prefix."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.hits: dict[str, set[int]] = defaultdict(set)

    def __call__(self, frame, event, arg):
        # Scope tracing at frame-entry: frames outside the source tree
        # return None so their line events are never generated at all.
        if event != "call":
            return None
        if not frame.f_code.co_filename.startswith(self.prefix):
            return None
        return self._local

    def _local(self, frame, event, arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local


def check_required_packages(rows: list[tuple[str, int, int, float]]) -> list[str]:
    """Problems with :data:`REQUIRED_PACKAGES`; empty when all are measured."""
    problems = []
    for pkg in REQUIRED_PACKAGES:
        prefix = os.path.join("src", "repro", *pkg.split("/")) + os.sep
        in_pkg = [r for r in rows if r[0].startswith(prefix)]
        if not in_pkg:
            problems.append(f"required package {pkg!r} has no source files")
        elif sum(hit for _, _, hit, _ in in_pkg) == 0:
            problems.append(f"required package {pkg!r} was never executed")
    return problems


def run_pytest(pytest_args: list[str]) -> int:
    import pytest

    return pytest.main(pytest_args)


def measure_with_coverage_py(pytest_args: list[str]):
    """Preferred mode when coverage.py is installed; None when it is not."""
    try:
        import coverage
    except ImportError:
        return None
    cov = coverage.Coverage(source=[SRC_ROOT])
    cov.start()
    status = run_pytest(pytest_args)
    cov.stop()
    hits: dict[str, set[int]] = {}
    data = cov.get_data()
    for path in data.measured_files():
        hits[path] = set(data.lines(path) or ())
    return status, hits


def measure_with_settrace(pytest_args: list[str]):
    tracer = LineTracer(SRC_ROOT)
    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        status = run_pytest(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return status, tracer.hits


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fail-under", type=float, default=None, metavar="PCT",
        help="exit non-zero when total line coverage is below PCT",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="total percentage only, no per-file table"
    )
    parser.add_argument(
        "pytest_args", nargs="*", help="arguments forwarded to pytest (default: tests -q)"
    )
    args, extra = parser.parse_known_args(argv)
    # Unrecognized flags (e.g. pytest's own -q/-x) pass through to pytest.
    pytest_args = args.pytest_args + extra or ["tests", "-q"]

    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    os.chdir(REPO_ROOT)

    measured = measure_with_coverage_py(pytest_args)
    mode = "coverage.py"
    if measured is None:
        measured = measure_with_settrace(pytest_args)
        mode = "sys.settrace"
    status, hits = measured
    if status != 0:
        print(f"coverage_gate: test run failed (pytest exit {status})", file=sys.stderr)
        return int(status)

    total_lines = 0
    total_hit = 0
    rows = []
    for path in iter_source_files(SRC_ROOT):
        lines = executable_lines(path)
        hit = len(lines & hits.get(path, set()))
        total_lines += len(lines)
        total_hit += hit
        pct = 100.0 * hit / len(lines) if lines else 100.0
        rows.append((os.path.relpath(path, REPO_ROOT), len(lines), hit, pct))

    if not args.quiet:
        width = max(len(r[0]) for r in rows)
        print(f"{'file':<{width}}  lines   hit   cover")
        for rel, n, hit, pct in rows:
            print(f"{rel:<{width}}  {n:5d} {hit:5d}  {pct:5.1f}%")
    total_pct = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"TOTAL ({mode}): {total_hit}/{total_lines} lines, {total_pct:.2f}%")

    problems = check_required_packages(rows)
    if problems:
        for problem in problems:
            print(f"coverage_gate: FAIL — {problem}", file=sys.stderr)
        return 3
    if args.fail_under is not None and total_pct < args.fail_under:
        print(
            f"coverage_gate: FAIL — {total_pct:.2f}% is below the floor "
            f"({args.fail_under:.2f}%)",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
