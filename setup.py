"""Setup shim for legacy editable installs (offline env lacks `wheel`)."""

from setuptools import setup

setup()
